"""AutoChip-style baseline: direct Verilog generation with raw feedback loops.

AutoChip (Thakur et al., DAC'24) feeds compiler/simulator output straight back
to the generating LLM without a separate Reviewer, Inspector, trace or escape
mechanism.  This implementation mirrors that structure so Table IV compares
ReChisel (Chisel + reflection agents) against a faithful simpler loop on
Verilog.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.generator import Generator
from repro.core.session import LLMCall, Session, ToolCall, drive
from repro.llm.client import ChatClient
from repro.problems.base import Problem
from repro.sim.testbench import Testbench
from repro.toolchain.simulator import SimulateRequest, Simulator
from repro.verilog.parser import VerilogParseError, parse_verilog


@dataclass
class AutoChipResult:
    """Outcome of one AutoChip run (records mirror :class:`ReChiselResult`)."""

    success: bool
    success_iteration: int | None
    outcomes: list[str] = field(default_factory=list)  # per-iteration "success"/"syntax"/"functional"
    final_code: str | None = None

    def success_by(self, iteration_cap: int) -> bool:
        return self.success_iteration is not None and self.success_iteration <= iteration_cap

    def to_payload(self) -> dict:
        """Compact JSON-serializable form for the sweep result store."""
        return {
            "success": self.success,
            "success_iteration": self.success_iteration,
            "outcomes": list(self.outcomes),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "AutoChipResult":
        """Rehydrate a stored result (``final_code`` is not restored)."""
        return cls(
            success=bool(payload["success"]),
            success_iteration=payload["success_iteration"],
            outcomes=[str(outcome) for outcome in payload["outcomes"]],
        )


class AutoChip:
    """Direct Verilog generation with feedback-only reflection."""

    def __init__(self, client: ChatClient | None, max_iterations: int = 10, simulator: Simulator | None = None):
        self.client = client
        self.max_iterations = max_iterations
        self.generator = Generator(client, language="verilog")
        self.simulator = simulator or Simulator(top="TopModule")

    def run(self, problem: Problem, reference_verilog: str, testbench: Testbench | None = None) -> AutoChipResult:
        return drive(self.session(problem, reference_verilog, testbench), self.client)

    def session(
        self, problem: Problem, reference_verilog: str, testbench: Testbench | None = None
    ) -> Session:
        """The AutoChip loop as a step-wise generator (see :mod:`repro.core.session`)."""
        spec = problem.spec_text()
        testbench = testbench or problem.build_testbench()
        result = AutoChipResult(success=False, success_iteration=None)

        response = yield LLMCall(self.generator.generation_messages(spec, problem.problem_id), "generate")
        code = self.generator.parse(response)
        outcome, feedback = yield from self._evaluate_steps(code, reference_verilog, testbench)
        result.outcomes.append(outcome)
        result.final_code = code
        if outcome == "success":
            result.success, result.success_iteration = True, 0
            return result

        for iteration in range(1, self.max_iterations + 1):
            # AutoChip's "revision plan" is simply the raw tool feedback.
            response = yield LLMCall(
                self.generator.revision_messages(spec, code, feedback, problem.problem_id), "revise"
            )
            code = self.generator.parse(response)
            outcome, feedback = yield from self._evaluate_steps(code, reference_verilog, testbench)
            result.outcomes.append(outcome)
            result.final_code = code
            if outcome == "success":
                result.success, result.success_iteration = True, iteration
                break
        return result

    def _evaluate_steps(self, code: str, reference_verilog: str, testbench: Testbench):
        error = yield ToolCall(lambda: _parse_error(code), "parse")
        if error is not None:
            return "syntax", f"Verilog compilation failed: {error}"
        request = SimulateRequest(self.simulator, code, reference_verilog, testbench)
        outcome = yield ToolCall(request.run, "simulate", batch=request)
        if outcome.success:
            return "success", "all tests passed"
        return "functional", outcome.render_feedback()


def _parse_error(code: str) -> str | None:
    try:
        parse_verilog(code)
    except VerilogParseError as exc:
        return str(exc)
    return None
