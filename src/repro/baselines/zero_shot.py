"""Zero-shot baseline: one generation, no reflection (Table I, Fig. 1).

Supports both target languages so the Chisel-vs-Verilog comparison of the
paper's motivation section can be reproduced with the same machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.generator import Generator
from repro.core.session import LLMCall, Session, ToolCall, drive
from repro.llm.client import ChatClient
from repro.problems.base import Problem
from repro.toolchain.compiler import ChiselCompiler
from repro.toolchain.simulator import SimulateRequest, Simulator
from repro.verilog.parser import VerilogParseError, parse_verilog


@dataclass
class ZeroShotOutcome:
    """Result of a single zero-shot attempt on one problem."""

    success: bool
    outcome: str  # "success", "syntax" or "functional"
    code: str


class ZeroShotRunner:
    """Generate once, compile, simulate, classify the error.

    ``compiler``/``simulator`` may be shared across runners (the sweep engine's
    worker context does this so compile/parse caches persist across samples).
    """

    def __init__(
        self,
        client: ChatClient | None,
        language: str = "chisel",
        compiler: ChiselCompiler | None = None,
        simulator: Simulator | None = None,
    ):
        self.client = client
        self.language = language
        self.generator = Generator(client, language=language)
        self.compiler = compiler or ChiselCompiler(top="TopModule")
        self.simulator = simulator or Simulator(top="TopModule")

    def run(self, problem: Problem, reference_verilog: str, seed_suffix: str = "") -> ZeroShotOutcome:
        return drive(self.session(problem, reference_verilog), self.client)

    def session(self, problem: Problem, reference_verilog: str) -> Session:
        """The zero-shot attempt as a step-wise generator (see :mod:`repro.core.session`)."""
        spec = problem.spec_text()
        response = yield LLMCall(self.generator.generation_messages(spec, problem.problem_id), "generate")
        code = self.generator.parse(response)
        testbench = problem.build_testbench()

        if self.language == "chisel":
            compiled = yield ToolCall(lambda: self.compiler.compile(code), "compile")
            if not compiled.success:
                return ZeroShotOutcome(False, "syntax", code)
            dut_verilog = compiled.verilog or ""
        else:
            parse_ok = yield ToolCall(lambda: _parses(code), "parse")
            if not parse_ok:
                return ZeroShotOutcome(False, "syntax", code)
            dut_verilog = code

        request = SimulateRequest(self.simulator, dut_verilog, reference_verilog, testbench)
        outcome = yield ToolCall(request.run, "simulate", batch=request)
        if outcome.success:
            return ZeroShotOutcome(True, "success", code)
        return ZeroShotOutcome(False, "functional", code)


def _parses(code: str) -> bool:
    try:
        parse_verilog(code)
    except VerilogParseError:
        return False
    return True
