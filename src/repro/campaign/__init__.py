"""Fault-tolerant campaign orchestration.

A *campaign* composes the stack's stages — generate → verify → fuzz →
benchmark — into one checkpointed, resumable, budgeted, preemptible run; see
:mod:`repro.campaign.orchestrator` for the full control model and ``python
-m repro.campaign --help`` for the CLI.

Attribute access is lazy: the generation service imports
:mod:`repro.campaign.scheduler` (to mark interactive sections on the
priority gate) while the orchestrator imports service-side modules, so
importing this package must not eagerly pull the orchestrator graph.
"""

from __future__ import annotations

_EXPORTS = {
    "Budget": "repro.campaign.budget",
    "BudgetExceeded": "repro.campaign.budget",
    "CampaignCancelled": "repro.campaign.budget",
    "CancelToken": "repro.campaign.budget",
    "Deadline": "repro.campaign.budget",
    "DeadlineExceeded": "repro.campaign.budget",
    "MeteredClient": "repro.campaign.budget",
    "CampaignConfig": "repro.campaign.config",
    "CheckpointLog": "repro.campaign.checkpoint",
    "ResilientStore": "repro.campaign.checkpoint",
    "list_campaigns": "repro.campaign.checkpoint",
    "payload_digest": "repro.campaign.checkpoint",
    "store_unit_digest": "repro.campaign.checkpoint",
    "PriorityGate": "repro.campaign.scheduler",
    "get_priority_gate": "repro.campaign.scheduler",
    "set_priority_gate": "repro.campaign.scheduler",
    "CampaignSpec": "repro.campaign.spec",
    "StageSpec": "repro.campaign.spec",
    "default_campaign": "repro.campaign.spec",
    "sweep_units": "repro.campaign.spec",
    "CampaignOrchestrator": "repro.campaign.orchestrator",
    "CampaignResult": "repro.campaign.orchestrator",
    "FaultPlan": "repro.campaign.chaos",
    "FaultyClient": "repro.campaign.chaos",
    "FlakyStore": "repro.campaign.chaos",
    "chaos_middleware": "repro.campaign.chaos",
    "overload_bus": "repro.campaign.chaos",
    "tear_store_tail": "repro.campaign.chaos",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
