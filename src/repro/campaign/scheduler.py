"""Priority scheduling: interactive traffic preempts background campaigns.

The :class:`PriorityGate` is a process-wide counter of in-flight
*interactive* work (generation-service job executions).  Background
campaigns poll it between work-unit chunks: while interactive jobs are
running, the campaign parks — so a user-facing request never queues behind a
batch sweep — and resumes the moment the gate clears (or after a bounded
wait, so a saturated service cannot starve campaigns forever).

The gate is deliberately tiny and dependency-free: the service marks
interactive sections with :meth:`interactive` (a context manager safe from
asyncio code — marking is counter arithmetic, never blocking), and the
campaign side does the waiting.  One process-wide default gate mirrors the
``get_bus``/``set_bus`` idiom of :mod:`repro.obs`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager


class PriorityGate:
    """Counts in-flight interactive jobs; campaigns wait for zero."""

    def __init__(self):
        self._lock = threading.Lock()
        self._clear = threading.Event()
        self._clear.set()
        self._active = 0
        self._marks = 0

    # ------------------------------------------------- interactive (producers)

    def interactive_begin(self) -> None:
        with self._lock:
            self._active += 1
            self._marks += 1
            self._clear.clear()

    def interactive_end(self) -> None:
        with self._lock:
            self._active = max(0, self._active - 1)
            if self._active == 0:
                self._clear.set()

    @contextmanager
    def interactive(self):
        self.interactive_begin()
        try:
            yield self
        finally:
            self.interactive_end()

    # --------------------------------------------------- background (waiters)

    @property
    def busy(self) -> bool:
        return not self._clear.is_set()

    @property
    def active(self) -> int:
        with self._lock:
            return self._active

    @property
    def marks(self) -> int:
        """Total interactive sections ever opened (test observability)."""
        with self._lock:
            return self._marks

    def wait_until_clear(self, timeout: float | None = None, tick: float = 0.005) -> bool:
        """Block until no interactive work is in flight.

        Returns ``True`` if the gate cleared, ``False`` on timeout — the
        bounded wait is what keeps a saturated service from starving
        background campaigns outright.  ``tick`` bounds the wait granularity
        so a cleared-then-immediately-reopened gate is still observed.
        """
        if not self.busy:
            return True
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.busy:
            remaining = tick if deadline is None else min(tick, deadline - time.monotonic())
            if remaining <= 0:
                return not self.busy
            self._clear.wait(remaining)
        return True


_gate_lock = threading.Lock()
_gate: PriorityGate | None = None


def get_priority_gate() -> PriorityGate:
    """The process-wide gate shared by services and campaigns."""
    global _gate
    with _gate_lock:
        if _gate is None:
            _gate = PriorityGate()
        return _gate


def set_priority_gate(gate: PriorityGate | None) -> PriorityGate | None:
    """Swap the process-wide gate (tests); returns the previous one."""
    global _gate
    with _gate_lock:
        previous = _gate
        _gate = gate
        return previous
