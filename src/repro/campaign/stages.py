"""Stage runners: how each campaign stage kind executes and checkpoints.

Each runner is a function ``(runtime, stage) -> dict`` where ``runtime`` is
the orchestrator's :class:`~repro.campaign.orchestrator.StageRuntime` — the
narrow surface through which stages touch the world.  Runners never sleep,
trap signals or retry transport faults themselves; they simply slice their
work into resumable items and hand each slice to the runtime, which owns
preemption, deadline/budget checks, chunk retries and checkpoint cadence.

Resumability contract per kind:

* ``sweep`` — the frontier is the result store itself: completed units are
  store hits on resume, so a killed stage replays zero completed units;
* ``report`` / ``benchmark`` — derived stages: they only read a sweep
  stage's persisted payloads (every unit a store/memo hit), so re-running
  them after a crash recomputes aggregates from identical inputs —
  wall-clock timings in a benchmark result are reported but excluded from
  the stage digest, keeping digests bit-stable across runs;
* ``fuzz`` — per-program frontier markers (store meta records) carry each
  program's conformance result, so resumed fuzz stages skip finished
  programs exactly like sweeps skip stored units.

Every runner returns ``{"digest", "total", "executed", "reused", ...}``:
``digest`` is the stage's deterministic content digest (the chaos matrix
asserts these match fault-free runs bit-for-bit) and ``executed``/``reused``
is the zero-recompute evidence the resume tests assert on.
"""

from __future__ import annotations

import time

from repro.campaign.checkpoint import frontier_key, payload_digest
from repro.campaign.spec import (
    KIND_BENCHMARK,
    KIND_FUZZ,
    KIND_REPORT,
    KIND_SWEEP,
    StageSpec,
    sweep_units,
)


def _unit_success(strategy: str, payload: dict) -> bool:
    if strategy == "zero_shot":
        return payload.get("outcome") == "success"
    return bool(payload.get("success"))


def run_sweep_stage(runtime, stage: StageSpec) -> dict:
    units = sweep_units(stage, runtime.spec.seed)
    executed_before = runtime.engine.stats.executed
    reused_before = runtime.engine.stats.memo_hits + runtime.engine.stats.store_hits
    payloads: list[dict] = []
    done = 0
    for chunk in runtime.chunks(units):
        payloads.extend(runtime.run_chunk(stage.name, chunk))
        done += len(chunk)
        runtime.publish_progress(stage.name, done, len(units))
    return {
        "digest": payload_digest(payloads),
        "total": len(units),
        "executed": runtime.engine.stats.executed - executed_before,
        "reused": runtime.engine.stats.memo_hits
        + runtime.engine.stats.store_hits
        - reused_before,
    }


def run_report_stage(runtime, stage: StageSpec) -> dict:
    """Aggregate a sweep stage's persisted payloads into pass@k counts."""
    source = runtime.spec.stage(str(stage.params.get("source", "generate")))
    if source.kind != KIND_SWEEP:
        raise ValueError(f"report stage {stage.name!r} must source a sweep stage")
    units = sweep_units(source, runtime.spec.seed)
    executed_before = runtime.engine.stats.executed
    payloads: list[dict] = []
    for chunk in runtime.chunks(units):
        payloads.extend(runtime.run_chunk(stage.name, chunk))
    cells: dict[str, dict] = {}
    for unit, payload in zip(units, payloads):
        cell = cells.setdefault(
            f"{unit.strategy}/{unit.problem_id}",
            {"samples": 0, "successes": 0},
        )
        cell["samples"] += 1
        if _unit_success(unit.strategy, payload):
            cell["successes"] += 1
    report = {
        "cells": {key: cells[key] for key in sorted(cells)},
        "samples": len(units),
        "successes": sum(cell["successes"] for cell in cells.values()),
    }
    runtime.publish_progress(stage.name, len(units), len(units))
    return {
        "digest": payload_digest([report]),
        "total": len(units),
        "executed": runtime.engine.stats.executed - executed_before,
        "reused": len(units) - (runtime.engine.stats.executed - executed_before),
        "report": report,
    }


def run_fuzz_stage(runtime, stage: StageSpec) -> dict:
    """Differential-conformance sweep over generated programs, one frontier
    marker per program."""
    from repro.fuzz import FuzzConfig, check_program, generate_program

    programs = int(stage.params.get("programs", 3))
    config = FuzzConfig(
        seed=int(stage.params.get("seed", runtime.spec.seed)),
        iterations=programs,
        points=int(stage.params.get("points", 8)),
        max_statements=int(stage.params.get("max_statements", 4)),
        shrink_failures=False,
    )
    results: list[dict] = []
    executed = 0
    reused = 0
    for index in range(programs):
        key = frontier_key(runtime.campaign_id, stage.name, f"{index:06d}")
        cached = runtime.store.get_meta(key)
        if cached is not None:
            results.append(cached)
            reused += 1
        else:
            runtime.tick(stage.name)
            report = check_program(generate_program(config, index), config)
            outcome = {
                "index": index,
                "ok": report.ok,
                "checks": report.checks,
                "failures": sorted(failure.render() for failure in report.failures),
            }
            runtime.store.put_meta(key, outcome)
            results.append(outcome)
            executed += 1
        runtime.publish_progress(stage.name, index + 1, programs)
    return {
        "digest": payload_digest(results),
        "total": programs,
        "executed": executed,
        "reused": reused,
        "ok": sum(1 for result in results if result.get("ok")),
    }


def run_benchmark_stage(runtime, stage: StageSpec) -> dict:
    """Time the warm verify/generate pipeline over a sweep stage's units.

    Runs after the source sweep completed, so every unit is a store or memo
    hit: what's measured is the warm read path (fingerprint → memo → store),
    not fresh generation.  The wall-clock numbers go in the result for
    humans and trend tooling; the digest covers only the deterministic
    payload content, so fault-free and chaos runs digest identically.
    """
    source = runtime.spec.stage(str(stage.params.get("source", "generate")))
    if source.kind != KIND_SWEEP:
        raise ValueError(f"benchmark stage {stage.name!r} must source a sweep stage")
    repeat = max(1, int(stage.params.get("repeat", 1)))
    units = sweep_units(source, runtime.spec.seed)
    executed_before = runtime.engine.stats.executed
    durations: list[float] = []
    payloads: list[dict] = []
    for cycle in range(repeat):
        started = time.perf_counter()
        cycle_payloads: list[dict] = []
        for chunk in runtime.chunks(units):
            cycle_payloads.extend(runtime.run_chunk(stage.name, chunk))
        durations.append(time.perf_counter() - started)
        payloads = cycle_payloads
        runtime.publish_progress(stage.name, (cycle + 1) * len(units), repeat * len(units))
    executed = runtime.engine.stats.executed - executed_before
    return {
        "digest": payload_digest(payloads),
        "total": len(units) * repeat,
        "executed": executed,
        "reused": len(units) * repeat - executed,
        "units_per_second": round(
            len(units) / min(durations) if durations and min(durations) > 0 else 0.0, 2
        ),
        "wall_seconds": round(sum(durations), 4),
    }


STAGE_RUNNERS = {
    KIND_SWEEP: run_sweep_stage,
    KIND_REPORT: run_report_stage,
    KIND_FUZZ: run_fuzz_stage,
    KIND_BENCHMARK: run_benchmark_stage,
}
