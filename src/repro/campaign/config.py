"""Configuration for the campaign orchestrator.

Every knob is also settable from the environment (``REPRO_CAMPAIGN_*``) so
long-running deployments tune campaigns without code changes; see
EXPERIMENTS.md for the catalogue.  The circuit breaker around the LLM path
is configured separately through ``REPRO_BREAKER_*``
(:meth:`repro.retry.CircuitBreaker.from_environment`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.experiments.config import RESULT_STORE_ENV, _DISABLED_STORE_VALUES
from repro.retry import BackoffPolicy

STORE_ENV = "REPRO_CAMPAIGN_STORE"
CHUNK_ENV = "REPRO_CAMPAIGN_CHUNK"
DEADLINE_ENV = "REPRO_CAMPAIGN_DEADLINE"
LLM_BUDGET_ENV = "REPRO_CAMPAIGN_LLM_BUDGET"
RETRIES_ENV = "REPRO_CAMPAIGN_RETRIES"
CHECKPOINT_EVERY_ENV = "REPRO_CAMPAIGN_CHECKPOINT_EVERY"
PREEMPT_WAIT_ENV = "REPRO_CAMPAIGN_PREEMPT_WAIT"
THROTTLE_ENV = "REPRO_CAMPAIGN_THROTTLE"
FLEET_ENV = "REPRO_CAMPAIGN_FLEET"


def _env_float(name: str) -> float | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None


def _env_int(name: str) -> int | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


@dataclass
class CampaignConfig:
    """Knobs of one :class:`~repro.campaign.orchestrator.CampaignOrchestrator`.

    ``store_path`` locates the campaign's segmented
    :class:`~repro.experiments.store.ResultStore` — unit results, stage
    frontiers and manifest checkpoints all persist there, which is what makes
    a SIGKILLed campaign resumable.  ``chunk_size`` is the preemption /
    checkpoint granularity: the orchestrator runs units through the engine in
    chunks of this many, yielding to interactive traffic and re-evaluating
    deadline/budget/drain between chunks (``chunk_size=1`` preempts at true
    work-unit granularity).

    ``deadline`` bounds the run's wall clock in seconds (``None`` = no
    bound); ``llm_budget`` bounds LLM completions the campaign may spend
    across *all* resumes (``None`` = unbounded) — spend is checkpointed, so a
    resumed campaign keeps paying from the same purse.  ``unit_retries``
    bounds chunk-level retries after transport-classified failures, cooled
    down by ``retry_backoff``.  ``throttle`` sleeps that many seconds between
    chunks (chaos tests use it to widen kill windows); ``fleet`` > 0 executes
    chunks on a supervised worker fleet of that size, degrading to inline
    execution if the fleet fails.
    """

    store_path: str | None = None
    chunk_size: int = 4
    deadline: float | None = None
    llm_budget: int | None = None
    unit_retries: int = 2
    retry_backoff: BackoffPolicy = BackoffPolicy(base=0.05, cap=1.0)
    checkpoint_every: int = 1
    preempt_wait: float = 5.0
    throttle: float = 0.0
    fleet: int = 0

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be > 0 or None")
        if self.llm_budget is not None and self.llm_budget < 0:
            raise ValueError("llm_budget must be >= 0 or None")
        if self.unit_retries < 0:
            raise ValueError("unit_retries must be >= 0")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.preempt_wait < 0:
            raise ValueError("preempt_wait must be >= 0")
        if self.fleet < 0:
            raise ValueError("fleet must be >= 0")

    @classmethod
    def from_environment(cls, base: "CampaignConfig | None" = None) -> "CampaignConfig":
        config = base or cls()
        chunk = _env_int(CHUNK_ENV)
        if chunk is not None:
            config.chunk_size = max(1, chunk)
        deadline = _env_float(DEADLINE_ENV)
        if deadline is not None:
            config.deadline = deadline if deadline > 0 else None
        budget = _env_int(LLM_BUDGET_ENV)
        if budget is not None:
            config.llm_budget = budget if budget >= 0 else None
        retries = _env_int(RETRIES_ENV)
        if retries is not None:
            config.unit_retries = max(0, retries)
        checkpoint_every = _env_int(CHECKPOINT_EVERY_ENV)
        if checkpoint_every is not None:
            config.checkpoint_every = max(1, checkpoint_every)
        preempt_wait = _env_float(PREEMPT_WAIT_ENV)
        if preempt_wait is not None:
            config.preempt_wait = max(0.0, preempt_wait)
        throttle = _env_float(THROTTLE_ENV)
        if throttle is not None:
            config.throttle = max(0.0, throttle)
        fleet = _env_int(FLEET_ENV)
        if fleet is not None:
            config.fleet = max(0, fleet)
        if config.store_path is None:
            raw = os.environ.get(STORE_ENV, "").strip()
            if not raw:
                raw = os.environ.get(RESULT_STORE_ENV, "").strip()
            if raw and raw.lower() not in _DISABLED_STORE_VALUES:
                config.store_path = raw
        return config
