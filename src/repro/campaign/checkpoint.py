"""Crash-safe campaign checkpoints on top of the segmented result store.

A campaign's durable state has two tiers, both living in the *same*
:class:`~repro.experiments.store.ResultStore` directory as the unit payloads
(one directory to back up, one directory to resume from):

* **the frontier is the store itself** — every completed work unit is
  already persisted under its content fingerprint the moment it finishes, so
  "which units are done" needs no separate bookkeeping and survives SIGKILL
  at any instant (the store truncates a torn tail line on reopen, losing at
  most the one record that never committed);
* **the manifest** — the campaign document (spec, per-stage status/digests,
  LLM spend, preemption counts) written as *meta* records under
  monotonically versioned keys ``campaign/<id>/manifest/<seq>``.  The store's
  first-wins append discipline makes each version immutable; the newest
  sequence number is the truth, and a crash mid-write loses at most the
  version being written, never an older one.

:class:`ResilientStore` wraps a store for campaigns that must survive disk
faults (ENOSPC bursts, transient write errors): a failed ``put`` parks the
record in a bounded in-memory buffer and every later write retries the
backlog first, so results flow to disk as soon as the fault clears instead
of crashing the campaign.  Buffered records are *not yet durable* — a crash
before the fault clears re-executes exactly those units on resume, which is
the correct (and deterministic) outcome.
"""

from __future__ import annotations

import hashlib
import json

from repro.experiments.store import META_PREFIX, ResultStore

MANIFEST_VERSION = 1
MANIFEST_NS = "campaign"


def manifest_key(campaign_id: str, seq: int) -> str:
    return f"{MANIFEST_NS}/{campaign_id}/manifest/{seq:08d}"


def frontier_key(campaign_id: str, stage: str, item: str) -> str:
    """Meta key marking one non-unit stage item (e.g. a fuzz program) done."""
    return f"{MANIFEST_NS}/{campaign_id}/frontier/{stage}/{item}"


class CheckpointLog:
    """Versioned manifest documents for one campaign id."""

    def __init__(self, store, campaign_id: str):
        self.store = store
        self.campaign_id = campaign_id
        self._seq = self._latest_seq()

    def _prefix(self) -> str:
        return f"{MANIFEST_NS}/{self.campaign_id}/manifest/"

    def _latest_seq(self) -> int:
        keys = self.store.meta_keys(self._prefix())
        if not keys:
            return 0
        return max(int(key.rsplit("/", 1)[-1]) for key in keys)

    @property
    def seq(self) -> int:
        return self._seq

    def load_latest(self) -> dict | None:
        """The newest intact manifest version, or ``None`` for a fresh id."""
        for seq in range(self._latest_seq(), 0, -1):
            manifest = self.store.get_meta(manifest_key(self.campaign_id, seq))
            if manifest is not None and manifest.get("manifest_v") == MANIFEST_VERSION:
                self._seq = seq
                return manifest
        return None

    def save(self, manifest: dict) -> int:
        """Append the next manifest version; returns its sequence number."""
        self._seq += 1
        document = dict(manifest)
        document["manifest_v"] = MANIFEST_VERSION
        document["seq"] = self._seq
        self.store.put_meta(manifest_key(self.campaign_id, self._seq), document)
        return self._seq


def list_campaigns(store) -> list[str]:
    """Campaign ids with at least one manifest version in ``store``."""
    ids = set()
    for key in store.meta_keys(MANIFEST_NS + "/"):
        parts = key.split("/")
        if len(parts) >= 3 and parts[2] == "manifest":
            ids.add(parts[1])
    return sorted(ids)


def payload_digest(payloads) -> str:
    """Order-sensitive content digest of a payload sequence (bit-identity)."""
    hasher = hashlib.sha256()
    for payload in payloads:
        hasher.update(
            json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str).encode()
        )
        hasher.update(b"\n")
    return hasher.hexdigest()


def store_unit_digest(path: str) -> str:
    """Digest of every *unit* record in a store directory, keyed and sorted.

    Opens the store read-only-ish (a fresh handle; tail recovery may truncate
    a torn line, which is exactly the committed-record semantics we want) and
    hashes ``fingerprint -> payload`` in fingerprint order.  Two stores with
    the same committed unit results produce the same digest regardless of
    segment layout, write order, or how many manifest versions they hold —
    this is the cross-run bit-identity oracle the chaos tests assert with.
    """
    store = ResultStore(path)
    try:
        hasher = hashlib.sha256()
        for fingerprint in sorted(store.unit_fingerprints()):
            payload = store.get(fingerprint)
            hasher.update(fingerprint.encode())
            hasher.update(b"=")
            hasher.update(
                json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str).encode()
            )
            hasher.update(b"\n")
        return hasher.hexdigest()
    finally:
        store.close()


class ResilientStore:
    """A store wrapper that rides out transient write faults.

    ``put``/``put_meta`` failures (OSError: ENOSPC, EIO, ...) park the record
    in a bounded buffer; every subsequent write (and explicit :meth:`flush`)
    retries the backlog first, preserving append order per key.  Reads check
    the buffer after the store so a parked record is still visible to the
    process that wrote it.  All other attributes delegate to the inner store.
    """

    def __init__(self, inner, max_buffered: int = 4096):
        self.inner = inner
        self.max_buffered = max_buffered
        self._buffered: list[tuple[str, tuple]] = []  # ("put"|"meta", args)
        self.write_faults = 0

    # ------------------------------------------------------------------ writes

    def _retry_buffered(self) -> None:
        while self._buffered:
            kind, args = self._buffered[0]
            try:
                if kind == "put":
                    self.inner.put(*args)
                else:
                    self.inner.put_meta(*args)
            except OSError:
                return
            self._buffered.pop(0)

    def _write(self, kind: str, args: tuple) -> None:
        self._retry_buffered()
        if self._buffered:
            self._park(kind, args)
            return
        try:
            if kind == "put":
                self.inner.put(*args)
            else:
                self.inner.put_meta(*args)
        except OSError:
            self.write_faults += 1
            self._park(kind, args)

    def _park(self, kind: str, args: tuple) -> None:
        if len(self._buffered) >= self.max_buffered:
            raise OSError(
                f"store write backlog exceeded {self.max_buffered} records"
            )
        self._buffered.append((kind, args))

    def put(self, fingerprint, unit, payload) -> None:
        self._write("put", (fingerprint, unit, payload))

    def put_meta(self, key, payload) -> None:
        self._write("meta", (key, payload))

    def flush(self) -> int:
        """Retry the backlog now; returns how many records remain parked."""
        self._retry_buffered()
        return len(self._buffered)

    @property
    def buffered(self) -> int:
        return len(self._buffered)

    # ------------------------------------------------------------------- reads

    def get(self, fingerprint):
        value = self.inner.get(fingerprint)
        if value is not None:
            return value
        for kind, args in self._buffered:
            if kind == "put" and args[0] == fingerprint:
                return args[2]
        return None

    def get_meta(self, key):
        value = self.inner.get_meta(key)
        if value is not None:
            return value
        for kind, args in self._buffered:
            if kind == "meta" and args[0] == key:
                return args[1]
        return None

    def meta_keys(self, prefix: str = "") -> list[str]:
        keys = set(self.inner.meta_keys(prefix))
        keys.update(
            args[0] for kind, args in self._buffered if kind == "meta" and args[0].startswith(prefix)
        )
        return sorted(keys)

    def __contains__(self, fingerprint) -> bool:
        if fingerprint in self.inner:
            return True
        return any(
            kind == "put" and args[0] == fingerprint for kind, args in self._buffered
        )

    def __getattr__(self, name):
        return getattr(self.inner, name)


__all__ = [
    "META_PREFIX",
    "CheckpointLog",
    "ResilientStore",
    "frontier_key",
    "list_campaigns",
    "manifest_key",
    "payload_digest",
    "store_unit_digest",
]
