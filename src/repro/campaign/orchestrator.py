"""The fault-tolerant campaign orchestrator.

A campaign composes stages (generate → verify → fuzz → benchmark) over the
existing sweep machinery and runs them **crash-only**: every completed work
unit is durable in the segmented result store the moment it finishes, the
campaign manifest checkpoints as versioned meta records in the same store,
and the orchestrator may be SIGKILLed at any instant — ``--resume`` (or
simply re-running the same spec against the same store) replays zero
completed units and converges to results bit-identical to an uninterrupted
run.  The chaos matrix in ``tests/test_campaign_chaos.py`` asserts exactly
that for LLM-transport, store, event-bus, fleet and orchestrator faults.

Control is cooperative throughout.  Between every chunk of work units the
orchestrator re-evaluates the world:

* **preemption** — if the process-wide :class:`PriorityGate` shows
  interactive service traffic in flight, the campaign parks until the gate
  clears (bounded by ``preempt_wait`` so a saturated service cannot starve
  it);
* **deadline / budget** — wall-clock deadlines raise at the next check;
  LLM-call budgets are charged inside the session's metered client (and by
  the batching dispatcher on the service path), so an exhausted purse stops
  the campaign mid-stage with everything already completed safely persisted;
* **circuit breaking** — transport-classified failures feed a shared
  :class:`~repro.retry.CircuitBreaker`; while it is open the campaign waits
  out the cooldown instead of hammering a failing provider, and half-open
  probes close it on recovery;
* **drain** — SIGTERM (or :meth:`request_drain`) sets the cancel token; the
  campaign finishes its current chunk, checkpoints a ``drained`` manifest
  and exits cleanly;
* **degradation** — a failing fleet executor degrades to inline serial
  execution (fleet → inline) rather than failing the campaign, mirroring
  the simulator's vector → trace → stepwise backend fallback.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.campaign.budget import (
    Budget,
    BudgetExceeded,
    CampaignCancelled,
    CancelToken,
    Deadline,
    DeadlineExceeded,
    MeteredClient,
)
from repro.campaign.checkpoint import CheckpointLog, ResilientStore
from repro.campaign.config import CampaignConfig
from repro.campaign.scheduler import PriorityGate, get_priority_gate
from repro.campaign.spec import CampaignSpec
from repro.campaign.stages import STAGE_RUNNERS
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import SweepEngine
from repro.experiments.executors import SerialExecutor
from repro.experiments.store import ResultStore
from repro.experiments.work import WorkerContext
from repro.obs import get_bus
from repro.retry import CircuitBreaker, emit_retry, is_transport_fault

#: Campaign / stage status values (persisted in manifests).
RUNNING = "running"
COMPLETE = "complete"
DRAINED = "drained"
FAILED = "failed"
STOPPED_DEADLINE = "deadline-exceeded"
STOPPED_BUDGET = "budget-exhausted"


class _CampaignContext(WorkerContext):
    """A worker context whose clients are metered (budget/deadline) and may
    be wrapped by chaos middleware — the campaign's seam into every session."""

    def __init__(
        self,
        budget: Budget | None,
        deadline: Deadline | None,
        client_middleware=None,
        registry=None,
    ):
        super().__init__(registry=registry)
        self._budget = budget
        self._deadline = deadline
        self._middleware = client_middleware

    def client_for(self, unit):
        client = MeteredClient(super().client_for(unit), self._budget, self._deadline)
        if self._middleware is not None:
            # Middleware wraps *outside* the meter: an injected transport
            # fault raises before the budget is charged or the inner client's
            # RNG advances, so retries stay bit-identical and spend-identical.
            client = self._middleware(client, unit)
        return client


@dataclass
class StageState:
    """Per-stage progress as persisted in the manifest."""

    name: str
    kind: str
    status: str = "pending"
    result: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"name": self.name, "kind": self.kind, "status": self.status, "result": self.result}

    @classmethod
    def from_dict(cls, document: dict) -> "StageState":
        return cls(
            name=str(document["name"]),
            kind=str(document["kind"]),
            status=str(document.get("status", "pending")),
            result=dict(document.get("result", {})),
        )


@dataclass
class CampaignResult:
    """What one orchestrator run (fresh or resumed) produced."""

    campaign_id: str
    status: str
    stages: list[dict]
    #: Units actually executed / satisfied from memo+store *by this run* —
    #: the zero-replay evidence the resume tests assert on (per-stage numbers
    #: are historical: a reused stage reports what its original run did).
    executed: int = 0
    reused: int = 0
    llm_spent: int = 0
    llm_limit: int | None = None
    preemptions: int = 0
    breaker: dict = field(default_factory=dict)
    checkpoint_seq: int = 0
    resumed: bool = False
    error: str = ""

    def to_dict(self) -> dict:
        return {
            "campaign": self.campaign_id,
            "status": self.status,
            "stages": self.stages,
            "executed": self.executed,
            "reused": self.reused,
            "llm_spent": self.llm_spent,
            "llm_limit": self.llm_limit,
            "preemptions": self.preemptions,
            "breaker": self.breaker,
            "checkpoint_seq": self.checkpoint_seq,
            "resumed": self.resumed,
            "error": self.error,
        }

    def stage(self, name: str) -> dict:
        for stage in self.stages:
            if stage["name"] == name:
                return stage
        raise KeyError(name)


class StageRuntime:
    """The narrow world surface handed to stage runners."""

    def __init__(self, orchestrator: "CampaignOrchestrator"):
        self._orch = orchestrator

    @property
    def spec(self) -> CampaignSpec:
        return self._orch.spec

    @property
    def campaign_id(self) -> str:
        return self._orch.campaign_id

    @property
    def engine(self) -> SweepEngine:
        return self._orch.engine

    @property
    def store(self):
        return self._orch.store

    def chunks(self, units):
        size = self._orch.config.chunk_size
        for start in range(0, len(units), size):
            yield units[start : start + size]

    def run_chunk(self, stage_name: str, units) -> list[dict]:
        return self._orch._run_chunk(stage_name, units)

    def tick(self, stage_name: str) -> None:
        self._orch._tick(stage_name)

    def publish_progress(self, stage_name: str, done: int, total: int) -> None:
        self._orch._publish("progress", stage=stage_name, done=done, total=total)


class CampaignOrchestrator:
    """Run one :class:`CampaignSpec` to completion, drain or checkpointed stop."""

    def __init__(
        self,
        spec: CampaignSpec,
        config: CampaignConfig | None = None,
        *,
        store=None,
        registry=None,
        executor=None,
        bus=None,
        gate: PriorityGate | None = None,
        breaker: CircuitBreaker | None = None,
        client_middleware=None,
        store_wrapper=ResilientStore,
    ):
        self.spec = spec
        self.config = config or CampaignConfig()
        self.campaign_id = spec.campaign_id
        self.bus = bus if bus is not None else get_bus()
        self.gate = gate if gate is not None else get_priority_gate()
        self._owns_store = store is None
        if store is None:
            if not self.config.store_path:
                raise ValueError(
                    "campaigns need a persistent store: set CampaignConfig.store_path "
                    "or REPRO_CAMPAIGN_STORE"
                )
            store = ResultStore(self.config.store_path)
        # Campaigns ride out transient disk faults by default: failed puts
        # buffer in memory and land as soon as the fault clears.
        self.store = store_wrapper(store) if store_wrapper is not None else store
        self.checkpoints = CheckpointLog(self.store, self.campaign_id)
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker.from_environment(name="llm", bus=self.bus)
        )

        manifest = self.checkpoints.load_latest()
        self._resumed = manifest is not None
        spent = int(manifest.get("llm_spent", 0)) if manifest else 0
        self.budget = Budget(self.config.llm_budget, spent=spent)
        self.deadline = Deadline(self.config.deadline)
        self.cancel = CancelToken()
        self.preemptions = int(manifest.get("preemptions", 0)) if manifest else 0
        self._chunks_run = 0
        self._degraded = False
        self._status = str(manifest.get("status", RUNNING)) if manifest else RUNNING
        self._stages: dict[str, StageState] = {}
        recorded = {
            entry["name"]: StageState.from_dict(entry)
            for entry in (manifest.get("stages", []) if manifest else [])
        }
        for stage in spec.stages:
            self._stages[stage.name] = recorded.get(
                stage.name, StageState(stage.name, stage.kind)
            )
            # A stage mid-flight when the previous run died resumes from its
            # store frontier; only "complete" survives as a terminal state.
            if self._stages[stage.name].status != COMPLETE:
                self._stages[stage.name].status = "pending"

        self._context = _CampaignContext(
            self.budget, self.deadline, client_middleware, registry=registry
        )
        self._serial = SerialExecutor(self._context)
        if executor is not None:
            self._executor = executor
        elif self.config.fleet > 0:
            from repro.fleet import FleetConfig, FleetExecutor

            self._executor = FleetExecutor(
                FleetConfig.from_environment(FleetConfig(workers=self.config.fleet))
            )
        else:
            self._executor = self._serial
        self.engine = SweepEngine(
            ExperimentConfig(store_path=None),
            registry=registry,
            store=self.store,
            executor=self._executor,
            bus=self.bus,
        )

    # ----------------------------------------------------------------- control

    def request_drain(self, reason: str = "drain-requested") -> None:
        """Cooperatively stop: checkpoint after the current chunk and exit.

        Safe to call from signal handlers and other threads.
        """
        self._publish("drain", reason=reason)
        self.cancel.set(reason)

    # -------------------------------------------------------------------- run

    def run(self) -> CampaignResult:
        self._publish("start", resumed=self._resumed, stages=len(self.spec.stages))
        runtime = StageRuntime(self)
        status = COMPLETE
        error = ""
        try:
            if self._status == COMPLETE:
                # Whole campaign already finished in a previous run: nothing
                # to execute, report the recorded stages verbatim.
                return self._finish(COMPLETE)
            self._status = RUNNING
            self._save_checkpoint()
            for stage in self.spec.stages:
                state = self._stages[stage.name]
                if state.status == COMPLETE:
                    self._publish("stage", stage=stage.name, status="reused")
                    continue
                state.status = RUNNING
                self._publish("stage", stage=stage.name, status=RUNNING)
                self._save_checkpoint()
                state.result = STAGE_RUNNERS[stage.kind](runtime, stage)
                state.status = COMPLETE
                self._publish("stage", stage=stage.name, status=COMPLETE)
                self._save_checkpoint()
        except CampaignCancelled as exc:
            status, error = DRAINED, str(exc)
        except DeadlineExceeded as exc:
            status, error = STOPPED_DEADLINE, str(exc)
        except BudgetExceeded as exc:
            status, error = STOPPED_BUDGET, str(exc)
        except Exception as exc:
            status, error = FAILED, f"{type(exc).__name__}: {exc}"
            self._finish(status, error)
            raise
        return self._finish(status, error)

    def _finish(self, status: str, error: str = "") -> CampaignResult:
        for state in self._stages.values():
            if state.status == RUNNING:
                state.status = "pending"  # resumes from the frontier next run
        self._status = status
        self._save_checkpoint(status=status, error=error)
        self._publish("complete", status=status)
        result = self._result(status, error)
        self.close()
        return result

    def close(self) -> None:
        self.engine.close()
        if self._executor is not self._serial and hasattr(self._executor, "shutdown"):
            self._executor.shutdown()
        if hasattr(self.store, "flush"):
            self.store.flush()
        if self._owns_store:
            self.store.close()

    def _result(self, status: str, error: str = "") -> CampaignResult:
        return CampaignResult(
            campaign_id=self.campaign_id,
            status=status,
            stages=[self._stages[stage.name].to_dict() for stage in self.spec.stages],
            executed=self.engine.stats.executed,
            reused=self.engine.stats.memo_hits + self.engine.stats.store_hits,
            llm_spent=self.budget.spent,
            llm_limit=self.budget.limit,
            preemptions=self.preemptions,
            breaker=self.breaker.snapshot() if self.breaker is not None else {},
            checkpoint_seq=self.checkpoints.seq,
            resumed=self._resumed,
            error=error,
        )

    # -------------------------------------------------------------- chunk loop

    def _run_chunk(self, stage_name: str, units) -> list[dict]:
        attempt = 0
        while True:
            self._tick(stage_name)
            self._wait_for_breaker()
            try:
                payloads = self.engine.run(units)
            except (BudgetExceeded, DeadlineExceeded, CampaignCancelled):
                raise
            except Exception as exc:
                if is_transport_fault(exc) and self.breaker is not None:
                    self.breaker.record_failure()
                if self._maybe_degrade(exc):
                    continue
                attempt += 1
                if attempt > self.config.unit_retries or not is_transport_fault(exc):
                    raise
                delay = self.config.retry_backoff.delay(attempt)
                emit_retry(self.bus, "campaign", attempt, type(exc).__name__, delay)
                self.cancel.wait(delay)
            else:
                if self.breaker is not None:
                    self.breaker.record_success()
                self._chunks_run += 1
                if self._chunks_run % self.config.checkpoint_every == 0:
                    self._save_checkpoint()
                return payloads

    def _maybe_degrade(self, exc: Exception) -> bool:
        """Fleet → inline degradation: swap the failing fleet executor for the
        in-process serial path and retry the chunk (completed units are store
        hits, so nothing replays)."""
        if self._degraded or self._executor is self._serial:
            return False
        self._degraded = True
        self._publish(
            "degrade",
            source=type(self._executor).__name__,
            target="SerialExecutor",
            reason=type(exc).__name__,
        )
        if hasattr(self._executor, "shutdown"):
            try:
                self._executor.shutdown()
            except Exception:
                pass
        self._executor = self._serial
        self.engine._executor = self._serial
        return True

    def _wait_for_breaker(self) -> None:
        """Park while the circuit breaker is open (deadline/drain aware)."""
        if self.breaker is None:
            return
        while not self.breaker.allow():
            self.cancel.check()
            self.deadline.check()
            self.cancel.wait(min(0.02, max(self.breaker.cooldown, 0.001)))

    def _tick(self, stage_name: str) -> None:
        """The cooperative checkpoint between work chunks."""
        self.cancel.check()
        self.deadline.check()
        if self.gate.busy:
            # Interactive service traffic has priority: park until the gate
            # clears, but never unboundedly (a saturated service must not
            # starve the campaign outright).
            self.preemptions += 1
            self._publish("preempt", stage=stage_name, active=self.gate.active)
            waited = 0.0
            while self.gate.busy and waited < self.config.preempt_wait:
                self.cancel.check()
                self.deadline.check()
                self.gate.wait_until_clear(timeout=0.05)
                waited += 0.05
        if self.config.throttle > 0:
            self.cancel.wait(self.config.throttle)

    # ------------------------------------------------------------- persistence

    def _save_checkpoint(self, status: str | None = None, error: str = "") -> None:
        manifest = {
            "campaign": self.campaign_id,
            "spec": self.spec.to_dict(),
            "status": status or self._status,
            "stages": [state.to_dict() for state in self._stages.values()],
            "llm_spent": self.budget.spent,
            "llm_limit": self.budget.limit,
            "preemptions": self.preemptions,
            "error": error,
        }
        seq = self.checkpoints.save(manifest)
        if hasattr(self.store, "flush"):
            self.store.flush()
        self._publish("checkpoint", seq=seq, status=manifest["status"])
        self._publish(
            "budget",
            spent=self.budget.spent,
            limit=self.budget.limit,
            remaining=self.budget.remaining(),
            deadline_remaining=(
                round(self.deadline.remaining(), 3)
                if self.deadline.remaining() is not None
                else None
            ),
        )

    # -------------------------------------------------------------------- bus

    def _publish(self, name: str, **attrs) -> None:
        if self.bus.active:
            self.bus.publish("campaign", name, campaign=self.campaign_id, **attrs)

    # ------------------------------------------------------------------ resume

    @classmethod
    def resume(
        cls,
        campaign_id: str,
        config: CampaignConfig,
        **kwargs,
    ) -> "CampaignOrchestrator":
        """Rebuild an orchestrator from a checkpointed manifest by id."""
        if not config.store_path:
            raise ValueError("resume needs CampaignConfig.store_path")
        store = ResultStore(config.store_path)
        try:
            manifest = CheckpointLog(store, campaign_id).load_latest()
        finally:
            store.close()
        if manifest is None:
            raise KeyError(f"no checkpointed campaign {campaign_id!r} in {config.store_path}")
        spec = CampaignSpec.from_dict(manifest["spec"])
        if spec.campaign_id != campaign_id:
            raise ValueError(
                f"manifest spec hashes to {spec.campaign_id}, not {campaign_id}"
            )
        return cls(spec, config, **kwargs)
