"""CLI for fault-tolerant campaigns.

Examples::

    # run (or transparently resume) the default quick campaign
    python -m repro.campaign --store /tmp/campaign --quick

    # list checkpointed campaigns in a store
    python -m repro.campaign --store /tmp/campaign --list

    # resume a specific campaign id from its newest manifest
    python -m repro.campaign --store /tmp/campaign --resume 0123abcd4567

    # bounded run: 30s wall clock, 500 LLM calls, chunk = 2 units
    python -m repro.campaign --store /tmp/campaign --quick \\
        --deadline 30 --budget 500 --chunk 2

SIGTERM / SIGINT request a graceful drain: the campaign finishes its current
chunk, checkpoints a ``drained`` manifest and exits 0 — re-running the same
command resumes from the frontier.  The last stdout line is always the
campaign result as one compact JSON document (machine-readable for the chaos
harness and CI).

Exit codes: 0 — complete or drained; 4 — deadline/budget stop (checkpointed,
resumable); 1 — failure.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys

from repro.campaign.checkpoint import list_campaigns
from repro.campaign.config import CampaignConfig
from repro.campaign.orchestrator import (
    COMPLETE,
    DRAINED,
    STOPPED_BUDGET,
    STOPPED_DEADLINE,
    CampaignOrchestrator,
)
from repro.campaign.spec import CampaignSpec, default_campaign
from repro.experiments.store import ResultStore

EXIT_OK = 0
EXIT_FAILED = 1
EXIT_USAGE = 2
EXIT_STOPPED = 4


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Run, resume and inspect fault-tolerant experiment campaigns.",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="campaign store directory (default: REPRO_CAMPAIGN_STORE / REPRO_RESULT_STORE)",
    )
    what = parser.add_mutually_exclusive_group()
    what.add_argument(
        "--quick",
        action="store_true",
        help="run the default quick campaign (generate → verify → fuzz → benchmark)",
    )
    what.add_argument(
        "--spec",
        metavar="JSON",
        default=None,
        help="path to a CampaignSpec JSON document to run",
    )
    what.add_argument(
        "--resume",
        metavar="ID",
        default=None,
        help="resume a checkpointed campaign by id (spec restored from its manifest)",
    )
    what.add_argument(
        "--list",
        action="store_true",
        dest="list_campaigns",
        help="list checkpointed campaign ids in the store and exit",
    )
    parser.add_argument("--seed", type=int, default=0, help="campaign seed (with --quick)")
    parser.add_argument(
        "--problems",
        default="alu_w4",
        help="comma-separated problem ids (with --quick)",
    )
    parser.add_argument(
        "--samples", type=int, default=2, help="samples per strategy/problem (with --quick)"
    )
    parser.add_argument(
        "--deadline", type=float, default=None, help="wall-clock bound in seconds"
    )
    parser.add_argument(
        "--budget", type=int, default=None, help="LLM-completion budget across all resumes"
    )
    parser.add_argument(
        "--chunk", type=int, default=None, help="work units per preemptible chunk"
    )
    parser.add_argument(
        "--fleet", type=int, default=None, help="run chunks on a supervised fleet this large"
    )
    parser.add_argument(
        "--throttle", type=float, default=None, help="seconds to sleep between chunks"
    )
    return parser


def _build_config(args) -> CampaignConfig:
    config = CampaignConfig(store_path=args.store)
    config = CampaignConfig.from_environment(config)
    if args.deadline is not None:
        config.deadline = args.deadline if args.deadline > 0 else None
    if args.budget is not None:
        config.llm_budget = max(0, args.budget)
    if args.chunk is not None:
        config.chunk_size = max(1, args.chunk)
    if args.fleet is not None:
        config.fleet = max(0, args.fleet)
    if args.throttle is not None:
        config.throttle = max(0.0, args.throttle)
    return config


def _list(config: CampaignConfig) -> int:
    store = ResultStore(config.store_path)
    try:
        ids = list_campaigns(store)
    finally:
        store.close()
    for campaign_id in ids:
        print(campaign_id)
    if not ids:
        print("(no checkpointed campaigns)", file=sys.stderr)
    return EXIT_OK


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = _build_config(args)
    if not config.store_path:
        print(
            "error: no store; pass --store or set REPRO_CAMPAIGN_STORE",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.list_campaigns:
        return _list(config)

    if args.resume:
        orchestrator = CampaignOrchestrator.resume(args.resume, config)
    else:
        if args.spec:
            with open(args.spec, "r", encoding="utf-8") as handle:
                spec = CampaignSpec.from_dict(json.load(handle))
        else:
            spec = default_campaign(
                problems=tuple(p for p in args.problems.split(",") if p),
                samples=max(1, args.samples),
                seed=args.seed,
            )
        orchestrator = CampaignOrchestrator(spec, config)

    def _drain(signum, frame):
        orchestrator.request_drain(f"signal {signum}")

    previous = {
        signal.SIGTERM: signal.signal(signal.SIGTERM, _drain),
        signal.SIGINT: signal.signal(signal.SIGINT, _drain),
    }
    try:
        result = orchestrator.run()
    except Exception as exc:
        print(f"campaign failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        print(
            json.dumps(
                {"campaign": orchestrator.campaign_id, "status": "failed", "error": str(exc)},
                sort_keys=True,
            )
        )
        return EXIT_FAILED
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    print(json.dumps(result.to_dict(), sort_keys=True))
    if result.status in (COMPLETE, DRAINED):
        return EXIT_OK
    if result.status in (STOPPED_DEADLINE, STOPPED_BUDGET):
        return EXIT_STOPPED
    return EXIT_FAILED


if __name__ == "__main__":
    raise SystemExit(main())
