"""Chaos injection across the stack: seeded, bounded, bit-identity-safe.

The chaos matrix exercises every resilience mechanism the campaign
orchestrator composes, one fault class at a time:

* **LLM transport** — :class:`FaultyClient` wraps a session's chat client and
  raises :class:`~repro.retry.TransportTimeout` / 503
  :class:`~repro.retry.HttpError` bursts / raw
  :class:`~repro.retry.MalformedResponseError` on a seeded schedule.  Faults
  raise *before* delegating, so the wrapped synthetic client's RNG never
  advances on a faulted attempt — a retried unit replays bit-identically,
  which is the invariant every chaos test asserts;
* **store** — :class:`FlakyStore` turns a seeded fraction of ``put`` /
  ``put_meta`` calls into ``ENOSPC`` :class:`OSError`\\ s (ride them out with
  :class:`~repro.campaign.checkpoint.ResilientStore`), and
  :func:`tear_store_tail` appends a torn half-record to a store's active tail
  the way a crash mid-``write`` would (the store truncates it on reopen);
* **event bus** — :func:`overload_bus` attaches a pathological one-slot
  subscriber to every topic, forcing the full routing + drop path on every
  publish (observability overload must never perturb results);
* **fleet / orchestrator** — no helpers needed here: the fleet chaos hooks
  live in :mod:`repro.fleet.faults`, and orchestrator kills are real SIGKILLs
  delivered by the resume tests.

Fault schedules draw from :func:`repro.retry.seeded_rng`, so a given seed
produces the same fault pattern every run; ``limit`` bounds total injections
so bounded-retry campaigns always eventually converge.
"""

from __future__ import annotations

import errno
import os
import threading

from repro.retry import (
    HttpError,
    MalformedResponseError,
    TransportTimeout,
    seeded_rng,
)

FAULT_TIMEOUT = "timeout"
FAULT_HTTP = "http"
FAULT_MALFORMED = "malformed"
FAULT_KINDS = (FAULT_TIMEOUT, FAULT_HTTP, FAULT_MALFORMED)


def raise_fault(kind: str) -> None:
    """Raise the transport exception for one fault kind."""
    if kind == FAULT_TIMEOUT:
        raise TransportTimeout("chaos: injected transport timeout")
    if kind == FAULT_HTTP:
        raise HttpError(503, "chaos: injected 5xx burst")
    if kind == FAULT_MALFORMED:
        raise MalformedResponseError("chaos: injected malformed response body")
    raise ValueError(f"unknown fault kind {kind!r}")


class FaultPlan:
    """A seeded, shared, bounded schedule of LLM transport faults.

    One plan is shared by every :class:`FaultyClient` in a campaign: each
    ``complete`` call advances a process-wide call counter and the plan's RNG
    decides whether (and which) fault fires.  ``rate`` is the per-call fault
    probability, ``limit`` caps total injections (``None`` = unbounded) so a
    retried call eventually gets through, and ``seed`` makes the whole
    schedule reproducible.
    """

    def __init__(
        self,
        rate: float = 0.3,
        kinds: tuple[str, ...] = FAULT_KINDS,
        seed: int = 0,
        limit: int | None = None,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        self.rate = rate
        self.kinds = tuple(kinds)
        self.limit = limit
        self._rng = seeded_rng("chaos-llm", seed, list(kinds), rate)
        self._lock = threading.Lock()
        self.calls = 0
        self.injected = 0

    def next_fault(self) -> str | None:
        """The fault to inject for the next call, or ``None`` to pass through."""
        with self._lock:
            self.calls += 1
            if self.limit is not None and self.injected >= self.limit:
                return None
            if not self.kinds or self._rng.random() >= self.rate:
                return None
            self.injected += 1
            return self.kinds[self._rng.randrange(len(self.kinds))]

    def snapshot(self) -> dict:
        with self._lock:
            return {"calls": self.calls, "injected": self.injected, "rate": self.rate}


class FaultyClient:
    """A chat client wrapper that injects transport faults before delegating.

    The fault check precedes the inner call: a faulted attempt leaves the
    wrapped client's RNG untouched, so the eventual successful retry produces
    exactly the payload a fault-free run would have.
    """

    def __init__(self, inner, plan: FaultPlan):
        self.inner = inner
        self.plan = plan

    def complete(self, messages):
        kind = self.plan.next_fault()
        if kind is not None:
            raise_fault(kind)
        return self.inner.complete(messages)


def chaos_middleware(plan: FaultPlan):
    """A ``client_middleware`` for the orchestrator: wrap every session client."""

    def middleware(client, unit):
        return FaultyClient(client, plan)

    return middleware


class FlakyStore:
    """A store wrapper that fails a seeded fraction of writes with ENOSPC.

    Reads always succeed (a full disk still serves reads); writes raise
    ``OSError(ENOSPC)`` per the seeded schedule.  Compose under
    :class:`~repro.campaign.checkpoint.ResilientStore` —
    ``ResilientStore(FlakyStore(store))`` — to assert campaigns ride out disk
    faults without losing or reordering results.
    """

    def __init__(
        self,
        inner,
        rate: float = 0.3,
        seed: int = 0,
        limit: int | None = None,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.inner = inner
        self.rate = rate
        self.limit = limit
        self._rng = seeded_rng("chaos-store", seed, rate)
        self._lock = threading.Lock()
        self.injected = 0

    def _maybe_fail(self) -> None:
        with self._lock:
            if self.limit is not None and self.injected >= self.limit:
                return
            if self._rng.random() < self.rate:
                self.injected += 1
                raise OSError(errno.ENOSPC, "chaos: no space left on device")

    def put(self, fingerprint, unit, payload) -> None:
        self._maybe_fail()
        self.inner.put(fingerprint, unit, payload)

    def put_meta(self, key, payload) -> None:
        self._maybe_fail()
        self.inner.put_meta(key, payload)

    def __contains__(self, fingerprint) -> bool:
        return fingerprint in self.inner

    def __getattr__(self, name):
        return getattr(self.inner, name)


def tear_store_tail(path: str, garbage: bytes = b'{"v": 1, "fp": "torn') -> bool:
    """Append a torn (newline-less) half-record to a store's active tail.

    Simulates a crash mid-``write(2)``: the next :class:`ResultStore` to open
    the directory must truncate the torn line and carry on.  Returns ``True``
    if a tail file existed to tear.
    """
    tail = os.path.join(path, "tail.jsonl")
    if not os.path.exists(tail):
        return False
    with open(tail, "ab") as handle:
        handle.write(garbage)
        handle.flush()
        os.fsync(handle.fileno())
    return True


def overload_bus(bus, maxsize: int = 1):
    """Attach a pathological catch-all subscriber (returns the subscription).

    Every publish now pays full routing into a one-slot queue that drops
    almost everything — the event-bus-overload chaos mode.  Unsubscribe (or
    let the test fixture's bus die) to restore the fast path.
    """
    return bus.subscribe("*", maxsize=maxsize, name="chaos-overload")
