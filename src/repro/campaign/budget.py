"""Deadlines, budgets and cooperative cancellation for campaigns.

These are the cooperative-control primitives the orchestrator threads down
the stack: a :class:`Budget` charges LLM calls wherever they happen (the
inline path meters through :class:`MeteredClient`; the async service path
hands the same object to the :class:`~repro.llm.dispatch.BatchingDispatcher`,
which duck-types it via ``charge``), a :class:`Deadline` turns wall-clock
expiry into an exception at every check point, and a :class:`CancelToken`
carries drain/shutdown requests from signal handlers into the campaign loop.

All three are thread-safe: signal handlers, asyncio callbacks and worker
threads may touch them concurrently.
"""

from __future__ import annotations

import threading
import time


class BudgetExceeded(RuntimeError):
    """The campaign's LLM-call budget is spent."""


class DeadlineExceeded(RuntimeError):
    """The campaign's wall-clock deadline has passed."""


class CampaignCancelled(RuntimeError):
    """Cooperative cancellation (drain/SIGTERM) was requested."""


class Budget:
    """A thread-safe spend counter with a hard limit.

    ``charge(n)`` atomically spends ``n`` units or raises
    :class:`BudgetExceeded` *without* spending, so a rejected charge never
    leaks budget.  ``limit=None`` means unbounded (charges are still
    counted, which is how campaigns report LLM spend).  ``spent`` may be
    seeded at construction: resumed campaigns restore it from the manifest
    so the purse spans resumes.
    """

    def __init__(self, limit: int | None = None, spent: int = 0):
        if limit is not None and limit < 0:
            raise ValueError("limit must be >= 0 or None")
        self.limit = limit
        self._spent = max(0, int(spent))
        self._lock = threading.Lock()

    @property
    def spent(self) -> int:
        with self._lock:
            return self._spent

    def remaining(self) -> int | None:
        with self._lock:
            if self.limit is None:
                return None
            return max(0, self.limit - self._spent)

    def charge(self, amount: int = 1) -> None:
        with self._lock:
            if self.limit is not None and self._spent + amount > self.limit:
                raise BudgetExceeded(
                    f"LLM budget exhausted: {self._spent}/{self.limit} spent, "
                    f"refused charge of {amount}"
                )
            self._spent += amount

    def snapshot(self) -> dict:
        with self._lock:
            return {"spent": self._spent, "limit": self.limit}


class Deadline:
    """A wall-clock bound with a monotonic (injectable) clock.

    ``seconds=None`` never expires.  ``check()`` raises
    :class:`DeadlineExceeded` once the bound passes — call it at every
    cooperative checkpoint.
    """

    def __init__(self, seconds: float | None, clock=time.monotonic):
        self.seconds = seconds
        self._clock = clock
        self._started = clock()

    def remaining(self) -> float | None:
        if self.seconds is None:
            return None
        return self.seconds - (self._clock() - self._started)

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    def check(self) -> None:
        if self.expired():
            raise DeadlineExceeded(f"campaign deadline of {self.seconds}s passed")


class CancelToken:
    """A sticky cancellation flag with a reason.

    Signal handlers ``set()`` it; the campaign loop ``check()``s it between
    chunks and unwinds through :class:`CampaignCancelled` to the drain path.
    """

    def __init__(self):
        self._event = threading.Event()
        self._reason = ""

    def set(self, reason: str = "cancelled") -> None:
        if not self._event.is_set():
            self._reason = reason
            self._event.set()

    @property
    def is_set(self) -> bool:
        return self._event.is_set()

    @property
    def reason(self) -> str:
        return self._reason

    def check(self) -> None:
        if self._event.is_set():
            raise CampaignCancelled(self._reason or "cancelled")

    def wait(self, timeout: float) -> bool:
        return self._event.wait(timeout)


class MeteredClient:
    """Wrap a chat client with deadline + budget enforcement per completion.

    The checks run *before* delegating, so a refused call never advances the
    inner client's RNG — a retried unit therefore replays bit-identically.
    Only ``complete`` is metered; the session protocol calls nothing else.
    """

    def __init__(self, inner, budget: Budget | None = None, deadline: Deadline | None = None):
        self.inner = inner
        self.budget = budget
        self.deadline = deadline

    def complete(self, messages):
        if self.deadline is not None:
            self.deadline.check()
        if self.budget is not None:
            self.budget.charge(1)
        return self.inner.complete(messages)
