"""Campaign and stage specifications.

A :class:`CampaignSpec` is a pure-data, JSON-round-trippable description of a
campaign: an ordered tuple of :class:`StageSpec` s (generate → verify → fuzz
→ benchmark by default) plus a campaign seed.  The campaign id is the
content fingerprint of the spec — two invocations of the same spec resolve
to the same id, the same manifest lineage and the same unit frontier, which
is why ``python -m repro.campaign`` naturally resumes if pointed at a store
that already holds partial progress for the spec it was given.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.caching import stable_fingerprint
from repro.experiments.work import (
    STRATEGY_AUTOCHIP,
    STRATEGY_RECHISEL,
    STRATEGY_ZERO_SHOT,
    WorkUnit,
)

#: Stage kinds the orchestrator knows how to run.
KIND_SWEEP = "sweep"
KIND_REPORT = "report"
KIND_FUZZ = "fuzz"
KIND_BENCHMARK = "benchmark"
STAGE_KINDS = (KIND_SWEEP, KIND_REPORT, KIND_FUZZ, KIND_BENCHMARK)

RECHISEL_KNOBS = (
    ("enable_escape", True),
    ("feedback_detail", "full"),
    ("use_knowledge", True),
)

_STRATEGY_DEFAULTS = {
    STRATEGY_ZERO_SHOT: ((("language", "chisel"),), 0),
    STRATEGY_RECHISEL: (RECHISEL_KNOBS, 4),
    STRATEGY_AUTOCHIP: ((), 4),
}


@dataclass(frozen=True)
class StageSpec:
    """One stage of a campaign: a kind plus its (JSON-able) parameters.

    ``params`` for the kinds:

    * ``sweep`` — ``strategies``, ``problems``, ``model``, ``samples``,
      ``max_iterations`` (optional per-strategy override), ``seed``;
    * ``report`` — ``source`` (name of the sweep stage to aggregate);
    * ``fuzz`` — ``seed``, ``programs``, ``points``, ``max_statements``;
    * ``benchmark`` — ``source`` (sweep stage whose warm units to time),
      ``repeat``.
    """

    name: str
    kind: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in STAGE_KINDS:
            raise ValueError(f"unknown stage kind {self.kind!r}; expected one of {STAGE_KINDS}")
        if not self.name:
            raise ValueError("stage name must be non-empty")

    def to_dict(self) -> dict:
        return {"name": self.name, "kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, document: dict) -> "StageSpec":
        return cls(
            name=str(document["name"]),
            kind=str(document["kind"]),
            params=dict(document.get("params", {})),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """An ordered, content-addressed campaign description."""

    name: str
    stages: tuple[StageSpec, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        names = [stage.name for stage in self.stages]
        if len(names) != len(set(names)):
            raise ValueError("stage names must be unique within a campaign")

    @property
    def campaign_id(self) -> str:
        """Content fingerprint of the spec (the store/manifest key root)."""
        return stable_fingerprint(self.to_dict())[:12]

    def stage(self, name: str) -> StageSpec:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no stage named {name!r}")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "stages": [stage.to_dict() for stage in self.stages],
        }

    @classmethod
    def from_dict(cls, document: dict) -> "CampaignSpec":
        return cls(
            name=str(document["name"]),
            seed=int(document.get("seed", 0)),
            stages=tuple(StageSpec.from_dict(entry) for entry in document["stages"]),
        )


def sweep_units(stage: StageSpec, campaign_seed: int) -> list[WorkUnit]:
    """Expand a ``sweep`` stage into its deterministic work-unit grid."""
    params = stage.params
    strategies = list(params.get("strategies", [STRATEGY_ZERO_SHOT, STRATEGY_RECHISEL]))
    problems = list(params.get("problems", ["alu_w4"]))
    model = str(params.get("model", "GPT-4o mini"))
    samples = int(params.get("samples", 2))
    seed = int(params.get("seed", campaign_seed))
    units = []
    for strategy in strategies:
        if strategy not in _STRATEGY_DEFAULTS:
            raise ValueError(f"unknown strategy {strategy!r} in stage {stage.name!r}")
        knobs, default_iterations = _STRATEGY_DEFAULTS[strategy]
        max_iterations = int(params.get("max_iterations", default_iterations) or 0)
        if strategy == STRATEGY_ZERO_SHOT:
            max_iterations = 0
        for case_index, problem_id in enumerate(problems):
            for sample in range(samples):
                units.append(
                    WorkUnit(
                        strategy=strategy,
                        model=model,
                        problem_id=problem_id,
                        case_index=case_index,
                        sample=sample,
                        seed=seed,
                        max_iterations=max_iterations,
                        knobs=knobs,
                    )
                )
    return units


def default_campaign(
    name: str = "quick",
    problems: tuple[str, ...] = ("alu_w4",),
    samples: int = 2,
    fuzz_programs: int = 3,
    seed: int = 0,
) -> CampaignSpec:
    """The canonical generate → verify → fuzz → benchmark campaign."""
    return CampaignSpec(
        name=name,
        seed=seed,
        stages=(
            StageSpec(
                "generate",
                KIND_SWEEP,
                {
                    "strategies": [STRATEGY_ZERO_SHOT, STRATEGY_RECHISEL],
                    "problems": list(problems),
                    "samples": samples,
                },
            ),
            StageSpec("verify", KIND_REPORT, {"source": "generate"}),
            StageSpec(
                "fuzz",
                KIND_FUZZ,
                {"programs": fuzz_programs, "points": 8, "max_statements": 4},
            ),
            StageSpec("benchmark", KIND_BENCHMARK, {"source": "generate", "repeat": 1}),
        ),
    )
