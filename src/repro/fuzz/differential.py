"""Differential conformance engine: one generated design, every seam checked.

For each program the engine asserts agreement at every stage boundary of the
toolchain:

* the source must compile — parse, elaborate, survive the FIRRTL pass
  pipeline and emit (the generator only produces well-typed programs, so any
  compile failure is a frontend or generator bug);
* the emitted Verilog must re-parse through :mod:`repro.verilog.parser`;
* the interpreter and compiled simulation backends must be bit-identical over
  generated stimulus (they are run as DUT/reference of one
  :func:`~repro.sim.testbench.run_testbench` call, so any divergence surfaces
  as a functional mismatch report);
* the trace-compiled testbench backend must reproduce the step-wise report
  exactly;
* the vectorized NumPy backend (``backend="vector"``, both the single-run
  and the batched :func:`~repro.sim.testbench.run_testbenches` paths) must
  also reproduce it bit for bit on vector-eligible designs;
* a warm run (stage caches populated by every previously checked program —
  the state in which cache-key collisions bite) must equal a cold run from
  cleared caches, both for the emitted Verilog and for every simulation
  report.

Failures carry a ``(kind, stage)`` signature that the shrinker uses as its
preservation predicate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.caching import (
    clear_registered_caches,
    restore_registered_caches,
    snapshot_registered_caches,
)
from repro.fuzz.config import FuzzConfig
from repro.fuzz.generate import GeneratedProgram
from repro.sim.testbench import (
    FunctionalPoint,
    SimulationReport,
    Testbench,
    VerilogDevice,
    _trace_plan,
    run_testbench,
    run_testbenches,
)
from repro.toolchain.compiler import ChiselCompiler
from repro.verilog import compile_sim
from repro.verilog.compile_sim import clear_kernel_cache, get_kernel, get_trace_kernel
from repro.verilog.compile_vec import get_vec_kernel
from repro.verilog.parser import VerilogParseError, parse_verilog
from repro.verilog.simulator import Simulation
from repro.verilog.vast import VModule

_IMPLICIT_PORTS = ("clock", "reset")


@dataclass(frozen=True)
class ConformanceFailure:
    """One broken seam, with enough detail to reproduce and classify it."""

    kind: str  # "compile" | "reparse" | "backend" | "cache" | "crash"
    stage: str | None
    top: str
    detail: str
    code: str | None = None  # Table II diagnostic class for compile failures

    @property
    def signature(self) -> tuple[str, str | None, str | None]:
        """Failure identity preserved across shrinking steps.

        Compile failures carry their diagnostic class so the shrinker cannot
        morph e.g. a combinational loop (C2) into an uninitialized wire (B3)
        while both fail in the FIRRTL stage.
        """
        return (self.kind, self.stage, self.code)

    def render(self) -> str:
        stage = f"/{self.stage}" if self.stage else ""
        return f"[{self.kind}{stage}] top={self.top}: {self.detail}"


@dataclass
class ConformanceReport:
    """Outcome of pushing one source through every seam of the stack."""

    failures: list[ConformanceFailure] = field(default_factory=list)
    checks: int = 0
    trace_eligible: bool = True
    compiled_eligible: bool = True
    vector_eligible: bool = True

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        if self.ok:
            return f"all {self.checks} conformance checks passed"
        return "\n".join(failure.render() for failure in self.failures)


class _ForcedBackendDevice(VerilogDevice):
    """A VerilogDevice whose Simulation backend is pinned, not auto-selected."""

    def __init__(self, module: VModule, backend: str):
        self.module = module
        self.simulation = Simulation(module, backend=backend)


def build_testbench(module: VModule, tb_seed: str, points: int, sequential: bool) -> Testbench:
    """Deterministic random stimulus for every non-implicit input port.

    The first two points are the all-zeros and all-ones corners; the rest are
    uniform random per port width.  Sequential designs get one clock cycle per
    point and a two-cycle reset, mirroring the benchmark testbenches.
    """
    rng = random.Random(tb_seed)
    inputs = [p for p in module.inputs() if p.name not in _IMPLICIT_PORTS]
    cycles = 1 if sequential else 0
    functional_points = [
        FunctionalPoint({p.name: 0 for p in inputs}, clock_cycles=cycles),
        FunctionalPoint({p.name: (1 << p.width) - 1 for p in inputs}, clock_cycles=cycles),
    ]
    for index in range(max(0, points - 2)):
        stimulus = {p.name: rng.getrandbits(p.width) for p in inputs}
        # A sprinkling of unchecked points exercises the deferred-settle flush.
        check = index % 7 != 5
        functional_points.append(
            FunctionalPoint(stimulus, clock_cycles=cycles, check=check)
        )
    return Testbench(points=functional_points, reset_cycles=2 if sequential else 0)


def _run_backends(
    module: VModule, testbench: Testbench, top: str, report: ConformanceReport
) -> dict[str, SimulationReport]:
    """Run every backend pairing; records divergences on ``report``."""
    runs: dict[str, SimulationReport] = {}

    stepwise = run_testbench(module, module, testbench, backend="stepwise")
    runs["stepwise"] = stepwise
    report.checks += 1
    if stepwise.runtime_error is not None:
        report.failures.append(
            ConformanceFailure(
                "backend", "stepwise", top, f"runtime error: {stepwise.runtime_error}"
            )
        )
        return runs
    if not stepwise.passed:
        # Same module against itself through identical devices can only
        # mismatch if the simulator itself is unsound.
        report.failures.append(
            ConformanceFailure(
                "backend", "self", top, f"self-comparison failed: {stepwise.render()}"
            )
        )
        return runs

    trace = run_testbench(module, module, testbench, backend="trace")
    runs["trace"] = trace
    report.checks += 1
    if trace != stepwise:
        report.failures.append(
            ConformanceFailure(
                "backend",
                "trace",
                top,
                f"trace report diverges from step-wise: {trace.render()}",
            )
        )

    if get_kernel(module) is None:
        report.compiled_eligible = False
    else:
        cross = run_testbench(
            _ForcedBackendDevice(module, "interpreter"),
            _ForcedBackendDevice(module, "compiled"),
            testbench,
            backend="stepwise",
        )
        runs["interp_vs_compiled"] = cross
        report.checks += 1
        if not cross.passed:
            detail = (
                f"runtime error: {cross.runtime_error}"
                if cross.runtime_error is not None
                else cross.render()
            )
            report.failures.append(
                ConformanceFailure("backend", "interpreter-vs-compiled", top, detail)
            )

    observed = tuple(port.name for port in module.outputs())
    schedule, _ = _trace_plan(testbench, observed)
    if get_trace_kernel(module, schedule) is None:
        report.trace_eligible = False

    if get_vec_kernel(module, schedule) is None:
        # Wide-context designs (>64-bit lanes) and NumPy-less environments
        # fall back by design; eligibility is reported, not a failure.
        report.vector_eligible = False
    else:
        vector = run_testbench(module, module, testbench, backend="vector")
        runs["vector"] = vector
        report.checks += 1
        if vector != stepwise:
            report.failures.append(
                ConformanceFailure(
                    "backend",
                    "vector",
                    top,
                    f"vector report diverges from step-wise: {vector.render()}",
                )
            )
        batched = run_testbenches(
            [(module, module, testbench), (module, module, testbench)], backend="vector"
        )
        runs["vector_batched"] = batched[0]
        report.checks += 1
        if batched[0] != stepwise or batched[1] != stepwise:
            report.failures.append(
                ConformanceFailure(
                    "backend",
                    "vector-batched",
                    top,
                    f"batched vector report diverges from step-wise: {batched[0].render()}",
                )
            )
    return runs


def check_source(
    source: str,
    tops: tuple[str, ...] = ("TopModule",),
    *,
    tb_seed: str = "fuzz-tb:0",
    points: int = 24,
    sequential: bool = True,
    compiler: ChiselCompiler | None = None,
    check_cold: bool = True,
) -> ConformanceReport:
    """Push ``source`` through every seam; see the module docstring.

    The warm pass runs first against whatever the process-wide stage caches
    already contain (that is the collision-sensitive state); ``check_cold``
    then clears every registered cache, asserts the cold rerun is
    bit-identical, and restores the accumulated warm state afterwards — so a
    fuzz session keeps growing one shared warm cache across programs and a
    cross-program cache-key collision stays observable.  Callers running
    inside a warm test suite should still isolate with the ``cache_mutating``
    marker (see the repo-root ``conftest.py``): the restored state includes
    this source's artifacts.
    """
    compiler = compiler or ChiselCompiler()
    report = ConformanceReport()

    warm: dict[str, tuple] = {}
    for top in tops:
        try:
            result = compiler.compile(source, top=top)
            if not result.success:
                first = result.diagnostics[0] if result.diagnostics else None
                report.failures.append(
                    ConformanceFailure(
                        "compile",
                        result.stage,
                        top,
                        first.render() if first is not None else "?",
                        code=getattr(first, "code", None),
                    )
                )
                warm[top] = (result, None, None)
                continue
            report.checks += 1
            try:
                module = parse_verilog(result.verilog)[-1]
            except VerilogParseError as exc:
                report.failures.append(
                    ConformanceFailure("reparse", None, top, str(exc))
                )
                warm[top] = (result, None, None)
                continue
            report.checks += 1
            testbench = build_testbench(module, f"{tb_seed}:{top}", points, sequential)
            runs = _run_backends(module, testbench, top, report)
            warm[top] = (result, testbench, runs)
        except Exception as exc:  # noqa: BLE001 — a crash is a finding, not an abort
            report.failures.append(ConformanceFailure("crash", None, top, repr(exc)))
            warm[top] = (None, None, None)

    if not check_cold:
        return report

    # The cold phase destroys the accumulated warm state, which is the very
    # state the next program's warm pass must run against (cross-program
    # cache-key collisions are only observable there) — snapshot it now and
    # restore it once the cold comparisons are done.  The kernel fallback
    # counter lives outside the cache registry, so it is saved explicitly.
    warm_snapshot = snapshot_registered_caches()
    warm_fallbacks = compile_sim._fallbacks[0]
    try:
        cold_compiler = ChiselCompiler(cache_size=None)
        for top in tops:
            warm_result, warm_tb, warm_runs = warm[top]
            if warm_result is None:
                continue
            try:
                # Clear per top, not once per program: sibling tops of one
                # source must each get a genuinely cold run, or a cache-key
                # collision between them would make warm and cold agree on
                # the wrong output.
                clear_registered_caches()
                clear_kernel_cache()
                cold = cold_compiler.compile(source, top=top)
                report.checks += 1
                if (
                    cold.success != warm_result.success
                    or cold.verilog != warm_result.verilog
                    or cold.stage != warm_result.stage
                    or cold.render_feedback() != warm_result.render_feedback()
                ):
                    report.failures.append(
                        ConformanceFailure(
                            "cache",
                            "compile",
                            top,
                            "cold compile differs from warm compile "
                            f"(warm stage={warm_result.stage}, cold stage={cold.stage})",
                        )
                    )
                    continue
                if not cold.success or warm_runs is None:
                    continue
                module = parse_verilog(cold.verilog)[-1]
                cold_report = ConformanceReport()
                cold_runs = _run_backends(module, warm_tb, top, cold_report)
                report.checks += 1
                for name, warm_run in warm_runs.items():
                    if cold_runs.get(name) != warm_run:
                        report.failures.append(
                            ConformanceFailure(
                                "cache",
                                f"sim:{name}",
                                top,
                                "cold simulation report diverges from warm run "
                                f"({name}): {cold_runs.get(name).render() if cold_runs.get(name) else 'missing'}",
                            )
                        )
                # Backend divergences that only show up cold are findings too.
                report.failures.extend(cold_report.failures)
            except Exception as exc:  # noqa: BLE001
                report.failures.append(
                    ConformanceFailure("crash", "cold", top, repr(exc))
                )
    finally:
        restore_registered_caches(warm_snapshot)
        compile_sim._fallbacks[0] = warm_fallbacks
    return report


def check_program(
    program: GeneratedProgram,
    config: FuzzConfig,
    compiler: ChiselCompiler | None = None,
    check_cold: bool = True,
) -> ConformanceReport:
    """Conformance-check one generated program."""
    return check_source(
        program.source,
        program.tops,
        tb_seed=f"fuzz-tb:{program.seed}:{program.index}",
        points=config.points,
        sequential=program.sequential,
        compiler=compiler,
        check_cold=check_cold,
    )
