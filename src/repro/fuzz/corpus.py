"""Persistent corpus of fuzz findings and interesting survivors.

JSON-lines, one record per line, in the mould of the sweep engine's
:class:`~repro.experiments.store.ResultStore`: append-only writes with a
flush per record (crash-tolerant), a torn trailing line is skipped on load,
records carry a schema version and are keyed by the source fingerprint so
replays and repeated sessions never duplicate entries.

Two record kinds:

* ``survivor`` — a program that passed every conformance check while
  exercising an interesting feature combination; CI replays these as
  regression tests (see ``tests/test_fuzz_corpus.py``).
* ``failure`` — a program that broke a seam, stored together with its shrunk
  repro and failure signature.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator

from repro.caching import stable_fingerprint

CORPUS_VERSION = 1


@dataclass(frozen=True)
class CorpusEntry:
    """One corpus record (survivor or failure)."""

    kind: str  # "survivor" | "failure"
    source: str
    top: str
    tops: tuple[str, ...]
    sequential: bool
    seed: int
    index: int
    config_fingerprint: str
    features: tuple[str, ...] = ()
    failure: dict | None = None
    shrunk_source: str | None = None

    @property
    def fingerprint(self) -> str:
        return stable_fingerprint({"kind": self.kind, "source": self.source})

    def to_record(self) -> dict:
        record = {
            "v": CORPUS_VERSION,
            "kind": self.kind,
            "fp": self.fingerprint,
            "seed": self.seed,
            "index": self.index,
            "config": self.config_fingerprint,
            "top": self.top,
            "tops": list(self.tops),
            "sequential": self.sequential,
            "features": list(self.features),
            "source": self.source,
        }
        if self.failure is not None:
            record["failure"] = self.failure
        if self.shrunk_source is not None:
            record["shrunk_source"] = self.shrunk_source
        return record

    @classmethod
    def from_record(cls, record: dict) -> "CorpusEntry":
        return cls(
            kind=record["kind"],
            source=record["source"],
            top=record.get("top", "TopModule"),
            tops=tuple(record.get("tops", ["TopModule"])),
            sequential=bool(record.get("sequential", True)),
            seed=int(record.get("seed", 0)),
            index=int(record.get("index", 0)),
            config_fingerprint=record.get("config", ""),
            features=tuple(record.get("features", [])),
            failure=record.get("failure"),
            shrunk_source=record.get("shrunk_source"),
        )


class CorpusStore:
    """A fingerprint-keyed JSON-lines store of fuzz corpus entries."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._entries: dict[str, CorpusEntry] = {}
        self._handle: IO[str] | None = None
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn trailing line from an interrupted session
                if record.get("v") != CORPUS_VERSION:
                    continue
                try:
                    entry = CorpusEntry.from_record(record)
                except (KeyError, TypeError, ValueError):
                    continue
                self._entries[entry.fingerprint] = entry

    def add(self, entry: CorpusEntry) -> bool:
        """Record one entry; returns False when it was already present."""
        if entry.fingerprint in self._entries:
            return False
        self._entries[entry.fingerprint] = entry
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(entry.to_record(), sort_keys=True) + "\n")
        self._handle.flush()
        return True

    def survivors(self) -> list[CorpusEntry]:
        return [e for e in self._entries.values() if e.kind == "survivor"]

    def failures(self) -> list[CorpusEntry]:
        return [e for e in self._entries.values() if e.kind == "failure"]

    def __iter__(self) -> Iterator[CorpusEntry]:
        return iter(self._entries.values())

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CorpusStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def load_corpus_entries(path: str | os.PathLike) -> list[CorpusEntry]:
    """Read-only load of a committed corpus (no file handle kept open)."""
    store = CorpusStore(path)
    entries = list(store)
    store.close()
    return entries
