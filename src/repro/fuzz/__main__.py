"""CLI for the differential fuzzing subsystem.

Examples::

    python -m repro.fuzz --seed 0 --n 500
    python -m repro.fuzz --seed 0 --n 1 --skip 137 --show   # one-line repro
    python -m repro.fuzz --replay tests/data/fuzz_corpus.jsonl

Exit status is non-zero when any conformance failure was found (failures are
printed shrunk, with their one-line repro).
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys

from repro.fuzz.config import FuzzConfig, parse_feature_mask
from repro.fuzz.corpus import load_corpus_entries
from repro.fuzz.generate import generate_program
from repro.fuzz.session import print_progress, replay_entry, run_session


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzing of the Chisel→FIRRTL→Verilog→simulation stack.",
    )
    env = FuzzConfig.from_environment()
    parser.add_argument("--seed", type=int, default=env.seed, help="session seed")
    parser.add_argument(
        "--n", type=int, default=env.iterations, help="number of programs to generate"
    )
    parser.add_argument(
        "--skip", type=int, default=0, help="first program index (for one-line repros)"
    )
    parser.add_argument(
        "--corpus",
        default=env.corpus_path,
        help="JSON-lines corpus path for failures and interesting survivors",
    )
    parser.add_argument(
        "--points", type=int, default=env.points, help="stimulus points per program"
    )
    parser.add_argument(
        "--features",
        default=None,
        help="comma-separated feature mask (default: all; see repro.fuzz.ALL_FEATURES)",
    )
    parser.add_argument(
        "--keep", type=int, default=env.keep_survivors, help="max survivors to store"
    )
    parser.add_argument(
        "--no-shrink", action="store_true", help="report failures without minimizing"
    )
    parser.add_argument(
        "--show", action="store_true", help="print each generated source (debugging)"
    )
    parser.add_argument(
        "--replay",
        metavar="CORPUS",
        default=None,
        help="replay a committed corpus file instead of generating new programs",
    )
    parser.add_argument(
        "--progress", action="store_true", help="live progress line on stderr"
    )
    return parser


def _replay(path: str) -> int:
    if not os.path.exists(path):
        print(f"error: corpus file {path!r} does not exist", file=sys.stderr)
        return 2
    entries = load_corpus_entries(path)
    if not entries:
        print(f"error: corpus file {path!r} holds no readable entries", file=sys.stderr)
        return 2
    failures = 0
    for entry in entries:
        if entry.kind != "survivor":
            continue
        report = replay_entry(entry)
        if not report.ok:
            failures += 1
            print(f"corpus entry (seed={entry.seed}, index={entry.index}) now fails:")
            print(report.render())
    print(f"replayed {len([e for e in entries if e.kind == 'survivor'])} survivors, "
          f"{failures} regression(s)")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.replay:
        return _replay(args.replay)

    config = dataclasses.replace(
        FuzzConfig.from_environment(),
        seed=args.seed,
        iterations=args.n,
        points=max(1, args.points),
        corpus_path=args.corpus,
        keep_survivors=max(0, args.keep),
        shrink_failures=not args.no_shrink,
    )
    if args.features:
        config = dataclasses.replace(config, features=parse_feature_mask(args.features))

    if args.show:
        for index in range(args.skip, args.skip + config.iterations):
            program = generate_program(config, index)
            print(f"// ---- index {index} features={','.join(program.features)}")
            print(program.source)

    result = run_session(
        config, skip=args.skip, progress=print_progress if args.progress else None
    )
    if args.progress:
        sys.stderr.write("\n")
    print(result.render())
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
