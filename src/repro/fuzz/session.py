"""Fuzz session driver: generate → conformance-check → shrink → persist.

One :func:`run_session` call is the unit both the CLI (``python -m
repro.fuzz``) and the long-running pytest entry (``-m fuzz``) share.  Every
failing program is shrunk to a minimal repro (preserving the failure's
``(kind, stage)`` signature) before being reported and stored, and
feature-diverse survivors are persisted so CI can replay them as regression
tests.
"""

from __future__ import annotations

import sys
import time
from collections import Counter
from dataclasses import dataclass, field

from repro.fuzz.config import FuzzConfig
from repro.fuzz.corpus import CorpusEntry, CorpusStore
from repro.fuzz.differential import ConformanceReport, check_program, check_source
from repro.fuzz.generate import GeneratedProgram, generate_program
from repro.fuzz.shrink import count_significant_lines, shrink
from repro.obs import get_bus
from repro.toolchain.compiler import ChiselCompiler


@dataclass
class FuzzFinding:
    """One failing program, shrunk and ready to report."""

    program: GeneratedProgram
    report: ConformanceReport
    shrunk_source: str

    def render(self) -> str:
        lines = [
            f"fuzz failure at index {self.program.index} "
            f"(repro: {self.program.repro_line()})",
            self.report.render(),
            f"shrunk to {count_significant_lines(self.shrunk_source)} lines:",
            self.shrunk_source.rstrip(),
        ]
        return "\n".join(lines)


@dataclass
class SessionResult:
    """Aggregate outcome of one fuzz session."""

    config: FuzzConfig
    programs: int = 0
    checks: int = 0
    findings: list[FuzzFinding] = field(default_factory=list)
    survivors_stored: int = 0
    feature_counts: Counter = field(default_factory=Counter)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [
            f"fuzzed {self.programs} programs ({self.checks} conformance checks) "
            f"in {self.elapsed:.1f}s — "
            f"{len(self.findings)} failure(s), {self.survivors_stored} survivor(s) stored"
        ]
        if self.feature_counts:
            coverage = ", ".join(
                f"{name}={count}" for name, count in sorted(self.feature_counts.items())
            )
            lines.append(f"feature coverage: {coverage}")
        for finding in self.findings:
            lines.append("")
            lines.append(finding.render())
        return "\n".join(lines)


def shrink_failure(
    program_source: str,
    tops: tuple[str, ...],
    report: ConformanceReport,
    config: FuzzConfig,
    tb_seed: str,
    sequential: bool,
) -> str:
    """Minimize a failing source, preserving the first failure's signature.

    The predicate recompiles (and for simulation-seam failures, re-simulates
    with the session's full stimulus) each candidate, so the shrunk repro
    provably still fails the same way.  Failures that do not reproduce under
    the predicate's fresh-cache conditions (e.g. a warm/cold divergence that
    needed the session's accumulated cache state) are returned unshrunk
    rather than lost.
    """
    target = report.failures[0].signature
    needs_sim = target[0] in ("backend", "cache", "crash")

    def predicate(candidate: str) -> bool:
        try:
            candidate_report = check_source(
                candidate,
                tops=tuple(t for t in tops if f"class {t}" in candidate) or ("TopModule",),
                tb_seed=tb_seed,
                points=config.points if needs_sim else 4,
                sequential=sequential,
                compiler=ChiselCompiler(cache_size=None),
                check_cold=needs_sim,
            )
        except Exception:  # noqa: BLE001 — a crashing candidate is not "the same failure"
            return False
        return any(f.signature == target for f in candidate_report.failures)

    if not predicate(program_source):
        return program_source
    return shrink(program_source, predicate)


def run_session(
    config: FuzzConfig,
    skip: int = 0,
    progress=None,
    bus=None,
) -> SessionResult:
    """Run ``config.iterations`` programs starting at index ``skip``.

    ``progress`` is an optional callable invoked as ``progress(index, result)``
    after each program (the CLI uses it for a live line).  ``bus`` (default:
    the process bus) receives one ``fuzz.program`` event per checked program
    and one ``fuzz.finding`` event per failure, for the operations console and
    the JSONL artifact uploaded on CI fuzz-job failure.
    """
    if bus is None:
        bus = get_bus()
    result = SessionResult(config=config)
    compiler = ChiselCompiler()
    store = CorpusStore(config.corpus_path) if config.corpus_path else None
    started = time.time()
    try:
        for index in range(skip, skip + config.iterations):
            program = generate_program(config, index)
            report = check_program(program, config, compiler=compiler)
            result.programs += 1
            result.checks += report.checks
            result.feature_counts.update(program.features)
            if bus.active:
                bus.publish(
                    "fuzz.program",
                    "checked",
                    index=program.index,
                    ok=report.ok,
                    checks=report.checks,
                    features=len(program.features),
                )

            if not report.ok:
                shrunk = program.source
                if config.shrink_failures:
                    try:
                        shrunk = shrink_failure(
                            program.source,
                            program.tops,
                            report,
                            config,
                            tb_seed=f"fuzz-tb:{program.seed}:{program.index}",
                            sequential=program.sequential,
                        )
                    except Exception:  # noqa: BLE001 — never lose a finding to the shrinker
                        shrunk = program.source
                finding = FuzzFinding(program, report, shrunk)
                result.findings.append(finding)
                if bus.active:
                    bus.publish(
                        "fuzz.finding",
                        "failure",
                        index=program.index,
                        kind=report.failures[0].kind,
                        stage=report.failures[0].stage,
                        repro=program.repro_line(),
                    )
                if store is not None:
                    store.add(
                        CorpusEntry(
                            kind="failure",
                            source=program.source,
                            top=program.top,
                            tops=program.tops,
                            sequential=program.sequential,
                            seed=program.seed,
                            index=program.index,
                            config_fingerprint=config.fingerprint(),
                            features=program.features,
                            failure={
                                "kind": report.failures[0].kind,
                                "stage": report.failures[0].stage,
                                "code": report.failures[0].code,
                                "detail": report.failures[0].detail,
                            },
                            shrunk_source=shrunk,
                        )
                    )
            elif (
                store is not None
                and len(program.features) >= config.interesting_min_features
                and result.survivors_stored < config.keep_survivors
            ):
                if store.add(
                    CorpusEntry(
                        kind="survivor",
                        source=program.source,
                        top=program.top,
                        tops=program.tops,
                        sequential=program.sequential,
                        seed=program.seed,
                        index=program.index,
                        config_fingerprint=config.fingerprint(),
                        features=program.features,
                    )
                ):
                    result.survivors_stored += 1

            if progress is not None:
                progress(index, result)
    finally:
        if store is not None:
            store.close()
    result.elapsed = time.time() - started
    return result


def replay_entry(entry: CorpusEntry, points: int = 12) -> ConformanceReport:
    """Re-run the full conformance check for one committed corpus entry."""
    return check_source(
        entry.source,
        tops=entry.tops,
        tb_seed=f"fuzz-tb:{entry.seed}:{entry.index}",
        points=points,
        sequential=entry.sequential,
    )


def print_progress(index: int, result: SessionResult) -> None:
    sys.stderr.write(
        f"\r[fuzz] {result.programs} programs, {len(result.findings)} failures, "
        f"{result.survivors_stored} survivors"
    )
    sys.stderr.flush()
