"""Automatic minimization of failing fuzz programs.

The shrinker is structural-but-textual: the generator emits one construct per
line with brace-delimited blocks, so reductions operate on line spans —
dropping whole classes, deleting or unwrapping ``when``/``switch``/``for``
blocks, deleting single statements, and simplifying right-hand sides to
literals.  A reduction is kept only when the caller's predicate still holds
(normally: the conformance failure keeps the same ``(kind, stage)``
signature), so the minimized program provably reproduces the original bug.

The loop is greedy with restarts (delta-debugging style): every pass retries
all reductions from the top until a fixpoint, which on generator-shaped
sources converges in a handful of rounds.
"""

from __future__ import annotations

import re
from typing import Callable

_RHS_RE = re.compile(r"^(\s*(?:val \w+ = )?[\w.()\s]*:=\s*)(.+)$")
_BLOCK_OPEN_RE = re.compile(r"^\s*(when |switch |for |is |\} \.elsewhen|\} \.otherwise).*\{\s*$")
_CLASS_RE = re.compile(r"^class (\w+)")


def _matching_close(lines: list[str], start: int) -> int | None:
    """Index of the line whose ``}`` closes the ``{`` opened on ``start``."""
    depth = 0
    for index in range(start, len(lines)):
        depth += lines[index].count("{") - lines[index].count("}")
        if depth <= 0:
            return index
    return None


def _branch_end(lines: list[str], start: int) -> tuple[int, bool] | None:
    """End of the branch whose body is opened by the trailing ``{`` on ``start``.

    Works for both plain openers (``when (...) {``) and chain continuations
    (``} .elsewhen (...) {``, whose net brace count is zero, so plain depth
    scanning from the line itself would terminate immediately).  Returns
    ``(index, is_continuation)`` where ``index`` is the line ending the branch
    — either the next ``} .elsewhen``/``} .otherwise`` continuation at branch
    depth (``is_continuation=True``) or the chain's closing ``}``.
    """
    depth = 1
    for index in range(start + 1, len(lines)):
        stripped = lines[index].strip()
        if depth == 1 and stripped.startswith("} ."):
            return index, True
        depth += lines[index].count("{") - lines[index].count("}")
        if depth <= 0:
            return index, False
    return None


def _class_spans(lines: list[str]) -> list[tuple[str, int, int]]:
    spans = []
    for index, line in enumerate(lines):
        match = _CLASS_RE.match(line)
        if match:
            close = _matching_close(lines, index)
            if close is not None:
                spans.append((match.group(1), index, close))
    return spans


def _candidates(lines: list[str]) -> list[list[str]]:
    """All single-step reductions of ``lines``, most aggressive first."""
    reductions: list[list[str]] = []

    # 1. Drop a whole class (helper modules, bundle classes).
    spans = _class_spans(lines)
    if len(spans) > 1:
        for _name, start, close in spans:
            reductions.append(lines[:start] + lines[close + 1 :])

    # 2. Drop or unwrap a brace-delimited block (or one branch of a chain).
    for index, line in enumerate(lines):
        if not _BLOCK_OPEN_RE.match(line):
            continue
        stripped = line.strip()
        if stripped.startswith("} ."):
            # ``} .elsewhen (...) {`` / ``} .otherwise {``: drop just this
            # branch — up to the next continuation (which keeps the chain
            # balanced) or the chain's final close (re-emit a plain ``}``).
            end = _branch_end(lines, index)
            if end is None:
                continue
            close, is_continuation = end
            if is_continuation:
                reductions.append(lines[:index] + lines[close:])
            else:
                indent = line[: len(line) - len(line.lstrip())]
                reductions.append(lines[:index] + [indent + "}"] + lines[close + 1 :])
            continue
        close = _matching_close(lines, index)
        if close is None or close <= index:
            continue
        # Drop the whole block (for a when-chain this spans every branch) ...
        reductions.append(lines[:index] + lines[close + 1 :])
        # ... or unwrap it, keeping the body.  A body containing chain
        # continuations would unbalance; those candidates just fail the
        # predicate's parse, so only plain closes are worth emitting.
        if lines[close].strip() == "}":
            reductions.append(lines[:index] + lines[index + 1 : close] + lines[close + 1 :])

    # 3. Drop a definition together with every line that mentions it (removes
    # val/use pairs that single-line deletion cannot break apart).
    for line in lines:
        match = re.match(r"^\s*val (\w+) = ", line)
        if match:
            name_re = re.compile(rf"\b{re.escape(match.group(1))}\b")
            reductions.append([l for l in lines if not name_re.search(l)])

    # 4. Drop a single line.
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped or stripped.startswith("import "):
            continue
        reductions.append(lines[:index] + lines[index + 1 :])

    # 5. Simplify a right-hand side to a literal.
    for index, line in enumerate(lines):
        match = _RHS_RE.match(line)
        if match and match.group(2).strip() != "0.U":
            reductions.append(lines[:index] + [match.group(1) + "0.U"] + lines[index + 1 :])

    return reductions


def shrink(
    source: str,
    predicate: Callable[[str], bool],
    max_attempts: int = 5000,
) -> str:
    """Minimize ``source`` while ``predicate`` (same-failure check) holds.

    ``predicate`` must be true for ``source`` itself; the result is a local
    minimum — no single remaining reduction preserves the failure.
    """
    if not predicate(source):
        raise ValueError("shrink() requires a source that already fails the predicate")
    lines = source.splitlines()
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _candidates(lines):
            attempts += 1
            if attempts >= max_attempts:
                break
            reduced = "\n".join(candidate).rstrip() + "\n"
            if predicate(reduced):
                lines = candidate
                improved = True
                break  # restart candidate enumeration on the smaller source
    return "\n".join(lines).rstrip() + "\n"


def count_significant_lines(source: str) -> int:
    """Non-blank, non-import source lines (the ``<= 15 lines`` shrink metric)."""
    return sum(
        1
        for line in source.splitlines()
        if line.strip() and not line.strip().startswith("import ")
    )
