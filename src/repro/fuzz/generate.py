"""Seeded, reproducible generator of random-but-well-typed Chisel programs.

The generator emits sources spanning the constructs the frontend supports —
nested Bundles and Vecs, Mux trees, arithmetic at mixed widths and signs,
registers with enables and resets, FSM-like when/switch chains, sibling module
classes — while tracking the width and signedness of every expression using
the elaborator's own inference rules, so each program is well-typed by
construction.  A generated program that fails to compile is therefore a
toolchain (or generator) bug, which is exactly what the differential engine
in :mod:`repro.fuzz.differential` asserts.

Determinism: program ``index`` of a session draws every choice from a
``random.Random`` stream seeded with the session seed, the index and the
config's generator fingerprint, so ``(config, index)`` fully determines the
design; :meth:`GeneratedProgram.repro_line` renders the equivalent CLI
invocation (including any non-default ``--points``/``--features``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.fuzz.config import FuzzConfig


@dataclass(frozen=True)
class GeneratedProgram:
    """One generated Chisel source plus the metadata needed to replay it."""

    seed: int
    index: int
    source: str
    top: str
    tops: tuple[str, ...]
    sequential: bool
    features: tuple[str, ...]
    repro: str = ""

    def repro_line(self) -> str:
        return self.repro or f"python -m repro.fuzz --seed {self.seed} --n 1 --skip {self.index}"


@dataclass(frozen=True)
class _Num:
    """A numeric expression with its exact inferred width."""

    expr: str
    width: int


_MAX_TRACKED_WIDTH = 24  # results wider than this are refit to the budget


class _ModuleGen:
    """Generates one module class (ports, body, output drives)."""

    def __init__(
        self,
        rng: random.Random,
        config: FuzzConfig,
        name: str,
        features_used: set[str],
        budget: int,
        allow_bundle_class: bool,
    ):
        self.rng = rng
        self.config = config
        self.name = name
        self.features = features_used
        self.budget = budget
        self.allow_bundle_class = allow_bundle_class
        self.uints: list[_Num] = []
        self.sints: list[_Num] = []
        self.bools: list[str] = []
        self.lines: list[str] = []
        self.prelude: list[str] = []  # named Bundle classes emitted before the module
        self.sequential = False
        self._counter = 0

    # ------------------------------------------------------------------ utils

    def _on(self, feature: str, probability: float = 1.0) -> bool:
        return self.config.enabled(feature) and self.rng.random() < probability

    def _use(self, feature: str) -> None:
        self.features.add(feature)

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _width(self) -> int:
        return self.rng.randint(2, self.config.max_width)

    def _fit(self, value: _Num, target: int) -> _Num:
        """Refit ``value`` to exactly ``target`` bits (extract or pad)."""
        if value.width == target:
            return value
        if value.width > target:
            return _Num(f"({value.expr})({target - 1}, 0)", target)
        return _Num(f"({value.expr}).pad({target})", target)

    def _uint_literal(self, width: int) -> _Num:
        return _Num(f"{self.rng.randrange(1 << width)}.U({width}.W)", width)

    # ------------------------------------------------------------ expressions

    def _uint_leaf(self) -> _Num:
        if self.uints and self.rng.random() < 0.8:
            return self.rng.choice(self.uints)
        return self._uint_literal(self._width())

    def _bool_leaf(self) -> str:
        choices = []
        if self.bools:
            choices.append("pool")
        if self.uints:
            choices.append("bit")
        if not choices:
            return self.rng.choice(("true.B", "false.B"))
        kind = self.rng.choice(choices)
        if kind == "pool":
            return self.rng.choice(self.bools)
        operand = self.rng.choice(self.uints)
        return f"({operand.expr})({self.rng.randrange(operand.width)})"

    def _uint_expr(self, depth: int) -> _Num:
        if depth <= 0 or self.rng.random() < 0.25:
            return self._uint_leaf()
        ops = ["leaf"]
        if self.config.enabled("arith"):
            ops += ["add", "sub", "mul", "div", "rem", "shr", "shl"]
        if self.config.enabled("bitops"):
            ops += ["and", "or", "xor", "not", "extract", "cat", "fill", "popcount", "reverse"]
        if self.config.enabled("mux"):
            ops += ["mux"]
        if self.config.enabled("sint") and self.sints:
            ops += ["sint_roundtrip"]
        op = self.rng.choice(ops)
        if op == "leaf":
            return self._uint_leaf()

        a = self._uint_expr(depth - 1)
        if op in ("add", "sub", "and", "or", "xor", "mul", "rem"):
            self._use("arith" if op in ("add", "sub", "mul", "rem") else "bitops")
            b = self._uint_expr(depth - 1)
            symbol = {"add": "+", "sub": "-", "and": "&", "or": "|",
                      "xor": "^", "mul": "*", "rem": "%"}[op]
            if op == "mul":
                width = a.width + b.width
            elif op == "rem":
                width = min(a.width, b.width)
            else:
                width = max(a.width, b.width)
            result = _Num(f"({a.expr} {symbol} {b.expr})", width)
        elif op == "div":
            self._use("arith")
            # Dynamic divisors exercise the div-by-zero seam across backends.
            if self.rng.random() < 0.5:
                b = self._uint_expr(depth - 1)
            else:
                b = self._uint_literal(self._width())
            result = _Num(f"({a.expr} / {b.expr})", a.width)
        elif op == "shr":
            self._use("arith")
            amount = self.rng.randint(2, 3)
            shift = self._fit(self._uint_expr(depth - 1), amount)
            result = _Num(f"({a.expr} >> {shift.expr})", a.width)
        elif op == "shl":
            self._use("arith")
            amount = self.rng.randint(1, 2)
            shift = self._fit(self._uint_expr(depth - 1), amount)
            result = _Num(f"({a.expr} << {shift.expr})", a.width + (1 << amount) - 1)
        elif op == "not":
            self._use("bitops")
            result = _Num(f"(~{a.expr})", a.width)
        elif op == "extract":
            self._use("bitops")
            hi = self.rng.randrange(a.width)
            lo = self.rng.randint(0, hi)
            result = _Num(f"({a.expr})({hi}, {lo})", hi - lo + 1)
        elif op == "cat":
            self._use("bitops")
            b = self._uint_expr(depth - 1)
            if self.rng.random() < 0.5:
                result = _Num(f"({a.expr} ## {b.expr})", a.width + b.width)
            else:
                result = _Num(f"Cat({a.expr}, {b.expr})", a.width + b.width)
        elif op == "fill":
            self._use("bitops")
            copies = self.rng.randint(2, 3)
            chunk = self._fit(a, min(a.width, 4))
            result = _Num(f"Fill({copies}, {chunk.expr})", copies * chunk.width)
        elif op == "popcount":
            self._use("bitops")
            result = _Num(f"PopCount({a.expr})", max(1, a.width.bit_length()))
        elif op == "reverse":
            self._use("bitops")
            result = _Num(f"Reverse({a.expr})", a.width)
        elif op == "sint_roundtrip":
            self._use("sint")
            s = self.rng.choice(self.sints)
            result = _Num(f"({s.expr}).asUInt", s.width)
        else:  # mux
            self._use("mux")
            b = self._fit(self._uint_expr(depth - 1), a.width)
            cond = self._bool_expr(depth - 1)
            result = _Num(f"Mux({cond}, {a.expr}, {b.expr})", a.width)
        if result.width > _MAX_TRACKED_WIDTH:
            result = self._fit(result, self.config.max_width)
        return result

    def _bool_expr(self, depth: int) -> str:
        if depth <= 0 or self.rng.random() < 0.3:
            return self._bool_leaf()
        kind = self.rng.choice(["cmp", "cmp", "logic", "not", "scmp" if self.sints else "cmp"])
        if kind == "cmp":
            a = self._uint_expr(depth - 1)
            b = self._uint_expr(depth - 1)
            op = self.rng.choice(("===", "=/=", "<", "<=", ">", ">="))
            return f"({a.expr} {op} {b.expr})"
        if kind == "scmp" and self.config.enabled("sint"):
            self._use("sint")
            a = self.rng.choice(self.sints)
            b = self.rng.choice(self.sints)
            op = self.rng.choice(("===", "<", ">="))
            return f"({a.expr} {op} {b.expr})"
        if kind == "logic":
            op = self.rng.choice(("&&", "||"))
            return f"({self._bool_expr(depth - 1)} {op} {self._bool_expr(depth - 1)})"
        return f"(!{self._bool_expr(depth - 1)})"

    def _sint_expr(self, depth: int) -> _Num:
        if self.sints and (depth <= 0 or self.rng.random() < 0.4):
            return self.rng.choice(self.sints)
        if not self.sints or self.rng.random() < 0.4:
            u = self._uint_expr(max(0, depth - 1))
            return _Num(f"({u.expr}).asSInt", u.width)
        a = self._sint_expr(depth - 1)
        b = self._sint_expr(depth - 1)
        op = self.rng.choice(("+", "-"))
        width = max(a.width, b.width)
        if width > _MAX_TRACKED_WIDTH:
            return self.rng.choice(self.sints)
        return _Num(f"({a.expr} {op} {b.expr})", width)

    # -------------------------------------------------------------------- IO

    def _build_io(self) -> tuple[list[str], list[tuple[str, str, int]]]:
        """Emit the IO bundle; returns (io field lines, output descriptors)."""
        fields: list[str] = []
        outputs: list[tuple[str, str, int]] = []  # (name, kind, width)

        n_inputs = self.rng.randint(1, 3)
        for i in range(n_inputs):
            width = self._width()
            roll = self.rng.random()
            if roll < 0.15:
                fields.append(f"val in{i} = Input(Bool())")
                self.bools.append(f"io.in{i}")
            elif roll < 0.3 and self.config.enabled("sint"):
                self._use("sint")
                fields.append(f"val in{i} = Input(SInt({width}.W))")
                self.sints.append(_Num(f"io.in{i}", width))
            else:
                fields.append(f"val in{i} = Input(UInt({width}.W))")
                self.uints.append(_Num(f"io.in{i}", width))

        if self._on("nested_bundle", 0.35):
            self._use("nested_bundle")
            wx, wy = self._width(), self._width()
            fields.append(
                "val grp = new Bundle { "
                f"val x = Input(UInt({wx}.W)); val y = Input(UInt({wy}.W)) }}"
            )
            self.uints.append(_Num("io.grp.x", wx))
            self.uints.append(_Num("io.grp.y", wy))

        if self._on("vec", 0.35):
            self._use("vec")
            size = self.rng.choice((2, 4))
            sel_width = size.bit_length() - 1
            width = self._width()
            fields.append(f"val lanes = Input(Vec({size}, UInt({width}.W)))")
            fields.append(f"val sel = Input(UInt({sel_width}.W))")
            for lane in range(size):
                self.uints.append(_Num(f"io.lanes({lane})", width))
            self.uints.append(_Num("io.lanes(io.sel)", width))
            self.uints.append(_Num("io.sel", sel_width))

        n_outputs = self.rng.randint(1, 3)
        for i in range(n_outputs):
            width = self._width()
            roll = self.rng.random()
            if roll < 0.2:
                fields.append(f"val out{i} = Output(Bool())")
                outputs.append((f"out{i}", "bool", 1))
            elif roll < 0.35 and self.config.enabled("sint"):
                self._use("sint")
                fields.append(f"val out{i} = Output(SInt({width}.W))")
                outputs.append((f"out{i}", "sint", width))
            else:
                fields.append(f"val out{i} = Output(UInt({width}.W))")
                outputs.append((f"out{i}", "uint", width))
        return fields, outputs

    # ------------------------------------------------------------- statements

    def _stmt_comb_val(self, depth: int) -> None:
        name = self._fresh("v")
        if self.config.enabled("sint") and self.rng.random() < 0.15:
            value = self._sint_expr(depth)
            self.lines.append(f"  val {name} = {value.expr}")
            self.sints.append(_Num(name, value.width))
            return
        if self.rng.random() < 0.2:
            self.lines.append(f"  val {name} = {self._bool_expr(depth)}")
            self.bools.append(name)
            return
        value = self._uint_expr(depth)
        self.lines.append(f"  val {name} = {value.expr}")
        self.uints.append(_Num(name, value.width))

    def _stmt_wire_when(self, depth: int) -> None:
        self._use("when")
        name = self._fresh("w")
        width = self._width()
        self.lines.append(f"  val {name} = Wire(UInt({width}.W))")
        self.lines.append(f"  {name} := {self._uint_expr(depth).expr}")
        branches = self.rng.randint(1, 3)
        for branch in range(branches):
            if branch == 0:
                self.lines.append(f"  when ({self._bool_expr(depth)}) {{")
            else:
                self.lines.append(f"  }} .elsewhen ({self._bool_expr(depth)}) {{")
            self.lines.append(f"    {name} := {self._uint_expr(depth).expr}")
        if self.rng.random() < 0.6:
            self.lines.append("  } .otherwise {")
            self.lines.append(f"    {name} := {self._uint_expr(depth).expr}")
        self.lines.append("  }")
        self.uints.append(_Num(name, width))

    def _stmt_reg(self, depth: int) -> None:
        self._use("reg")
        self.sequential = True
        name = self._fresh("r")
        width = self._width()
        init = self.rng.randrange(1 << width)
        self.lines.append(f"  val {name} = RegInit({init}.U({width}.W))")
        # The register may feed its own next value (registers break cycles).
        self.uints.append(_Num(name, width))
        update = self._fit(self._uint_expr(depth), width) if self.rng.random() < 0.5 else self._uint_expr(depth)
        if self._on("when", 0.7):
            self._use("when")
            self.lines.append(f"  when ({self._bool_expr(depth)}) {{")
            if self.rng.random() < 0.4:
                self.lines.append(f"    when ({self._bool_expr(depth - 1)}) {{")
                self.lines.append(f"      {name} := {update.expr}")
                self.lines.append("    } .otherwise {")
                self.lines.append(f"      {name} := {self._uint_expr(depth - 1).expr}")
                self.lines.append("    }")
            else:
                self.lines.append(f"    {name} := {update.expr}")
            self.lines.append("  }")
        else:
            self.lines.append(f"  {name} := {update.expr}")

    def _stmt_regnext(self, depth: int) -> None:
        self._use("reg")
        self.sequential = True
        name = self._fresh("n")
        value = self._uint_expr(depth)
        kind = self.rng.random()
        if kind < 0.5:
            self.lines.append(f"  val {name} = RegNext({value.expr}, 0.U)")
        else:
            enable = self._bool_expr(depth)
            init = self._uint_literal(value.width)
            self.lines.append(
                f"  val {name} = RegEnable({value.expr}, {init.expr}, {enable})"
            )
        self.uints.append(_Num(name, value.width))

    def _stmt_vec_table(self, depth: int) -> None:
        self._use("vec")
        name = self._fresh("t")
        size = self.rng.choice((2, 4))
        sel_width = size.bit_length() - 1
        width = self._width()
        elements = ", ".join(
            self._fit(self._uint_expr(depth - 1), width).expr for _ in range(size)
        )
        self.lines.append(f"  val {name} = VecInit(Seq({elements}))")
        index = self._fit(self._uint_expr(depth - 1), sel_width)
        self.uints.append(_Num(f"{name}({index.expr})", width))
        self.uints.append(_Num(f"{name}({self.rng.randrange(size)})", width))

    def _stmt_vec_pipeline(self, depth: int) -> None:
        self._use("vec")
        self._use("reg")
        self.sequential = True
        name = self._fresh("sv")
        stages = self.rng.randint(2, 3)
        width = self._width()
        feed = self._fit(self._uint_expr(depth), width)
        self.lines.append(f"  val {name} = Reg(Vec({stages}, UInt({width}.W)))")
        self.lines.append(f"  {name}(0) := {feed.expr}")
        self.lines.append(f"  for (i <- 1 until {stages}) {{")
        self.lines.append(f"    {name}(i) := {name}(i - 1)")
        self.lines.append("  }")
        self.uints.append(_Num(f"{name}({stages - 1})", width))

    def _stmt_fsm(self, depth: int) -> None:
        self._use("switch")
        self._use("reg")
        self.sequential = True
        name = self._fresh("st")
        states = self.rng.randint(2, 4)
        width = max(1, (states - 1).bit_length())
        self.lines.append(f"  val {name} = RegInit(0.U({width}.W))")
        self.lines.append(f"  switch ({name}) {{")
        for state in range(states):
            nxt = (state + 1) % states
            roll = self.rng.random()
            if roll < 0.4:
                self.lines.append(f"    is ({state}.U) {{")
                self.lines.append(f"      when ({self._bool_expr(depth - 1)}) {{")
                self.lines.append(f"        {name} := {nxt}.U")
                self.lines.append("      }")
                self.lines.append("    }")
            elif roll < 0.7:
                self.lines.append(
                    f"    is ({state}.U) {{ {name} := Mux({self._bool_expr(depth - 1)}, "
                    f"{nxt}.U, {self.rng.randrange(states)}.U) }}"
                )
            else:
                self.lines.append(f"    is ({state}.U) {{ {name} := {nxt}.U }}")
        self.lines.append("  }")
        self.uints.append(_Num(name, width))

    def _stmt_mem(self, depth: int) -> None:
        """A Mem or SyncReadMem with one write port and one read port.

        Depths include non-powers-of-two so some generated addresses fall out
        of range, exercising the OOB seam (reads collapse to 0, writes drop)
        identically across backends.  The write enable rides inside the mem
        idiom, so a ``--features mem``-only session still generates it.
        """
        self._use("mem")
        self.sequential = True
        name = self._fresh("m")
        words = self.rng.choice((2, 3, 4, 8))
        addr_width = max(1, (words - 1).bit_length())
        width = self._width()
        waddr = self._fit(self._uint_expr(depth - 1), addr_width)
        wdata = self._fit(self._uint_expr(depth - 1), width)
        raddr = self._fit(self._uint_expr(depth - 1), addr_width)
        if self.rng.random() < 0.5:
            # SyncReadMem: synchronous read-first port, optionally enabled,
            # so read-during-write lands on the old data in every backend.
            self.lines.append(f"  val {name} = SyncReadMem({words}, UInt({width}.W))")
            self.lines.append(f"  when ({self._bool_expr(depth - 1)}) {{")
            self.lines.append(f"    {name}.write({waddr.expr}, {wdata.expr})")
            self.lines.append("  }")
            rd = self._fresh("rd")
            if self.rng.random() < 0.5:
                enable = self._bool_expr(depth - 1)
                self.lines.append(f"  val {rd} = {name}.read({raddr.expr}, {enable})")
            else:
                self.lines.append(f"  val {rd} = {name}.read({raddr.expr})")
            self.uints.append(_Num(rd, width))
        else:
            # Mem: combinational read, synchronous write (apply or .write form).
            self.lines.append(f"  val {name} = Mem({words}, UInt({width}.W))")
            if self.rng.random() < 0.7:
                self.lines.append(f"  when ({self._bool_expr(depth - 1)}) {{")
                self.lines.append(f"    {name}({waddr.expr}) := {wdata.expr}")
                self.lines.append("  }")
            else:
                self.lines.append(f"  {name}.write({waddr.expr}, {wdata.expr})")
            self.uints.append(_Num(f"{name}({raddr.expr})", width))

    def _stmt_sint_val(self, depth: int) -> None:
        self._use("sint")
        name = self._fresh("s")
        value = self._sint_expr(depth)
        self.lines.append(f"  val {name} = {value.expr}")
        self.sints.append(_Num(name, value.width))

    # ---------------------------------------------------------------- emit

    def generate(self) -> list[str]:
        depth = self.config.max_expr_depth
        io_fields, outputs = self._build_io()

        header: list[str] = []
        if self.allow_bundle_class and self._on("named_bundle", 0.3):
            self._use("named_bundle")
            bundle_name = f"{self.name}IO"
            if self.rng.random() < 0.5:
                # Parameterized bundle: one extra field sized by the parameter.
                param_width = self._width()
                self.prelude.append(f"class {bundle_name}(w: Int = {param_width}) extends Bundle {{")
                self.prelude.append("  val extra = Input(UInt(w.W))")
                self.uints.append(_Num("io.extra", param_width))
            else:
                self.prelude.append(f"class {bundle_name} extends Bundle {{")
            for line in io_fields:
                self.prelude.append(f"  {line}")
            self.prelude.append("}")
            header.append(f"  val io = IO(new {bundle_name})")
        else:
            header.append("  val io = IO(new Bundle {")
            for line in io_fields:
                header.append(f"    {line}")
            header.append("  })")

        menu: list[str] = ["comb", "comb"]
        if self.config.enabled("when"):
            menu.append("wire_when")
        if self.config.enabled("reg"):
            menu += ["reg", "regnext"]
        if self.config.enabled("vec"):
            menu += ["vec_table", "vec_pipeline"]
        if self.config.enabled("switch"):
            menu.append("fsm")
        if self.config.enabled("sint"):
            menu.append("sint_val")
        if self.config.enabled("mem"):
            menu.append("mem")

        statements = self.rng.randint(2, self.budget)
        for _ in range(statements):
            kind = self.rng.choice(menu)
            if kind == "comb":
                self._stmt_comb_val(depth)
            elif kind == "wire_when":
                self._stmt_wire_when(depth)
            elif kind == "reg":
                self._stmt_reg(depth)
            elif kind == "regnext":
                self._stmt_regnext(depth)
            elif kind == "vec_table":
                self._stmt_vec_table(depth)
            elif kind == "vec_pipeline":
                self._stmt_vec_pipeline(depth)
            elif kind == "fsm":
                self._stmt_fsm(depth)
            elif kind == "sint_val":
                self._stmt_sint_val(depth)
            elif kind == "mem":
                self._stmt_mem(depth)

        drives: list[str] = []
        for out_name, kind, width in outputs:
            if kind == "bool":
                drives.append(f"  io.{out_name} := {self._bool_expr(depth)}")
            elif kind == "sint":
                value = self._sint_expr(depth)
                if value.width < width:
                    drives.append(f"  io.{out_name} := ({value.expr}).pad({width})")
                else:
                    drives.append(
                        f"  io.{out_name} := (({value.expr}).asUInt)({width - 1}, 0).asSInt"
                    )
            else:
                value = self._uint_expr(depth)
                # Half the drives are width-exact; the rest exercise the
                # connect-side truncate/pad seam.
                if self.rng.random() < 0.5:
                    value = self._fit(value, width)
                drives.append(f"  io.{out_name} := {value.expr}")

        lines = list(self.prelude)
        lines.append(f"class {self.name} extends Module {{")
        lines.extend(header)
        lines.extend(self.lines)
        lines.extend(drives)
        lines.append("}")
        return lines


def generate_program(config: FuzzConfig, index: int) -> GeneratedProgram:
    """Generate program ``index`` of the session described by ``config``."""
    rng = random.Random(f"fuzz:{config.seed}:{index}:{config.fingerprint()}")
    features_used: set[str] = set()

    module_names = ["TopModule"]
    if config.enabled("multi_module") and rng.random() < 0.3:
        features_used.add("multi_module")
        helpers = rng.randint(1, 2)
        module_names = [f"Helper{chr(ord('A') + i)}" for i in range(helpers)] + module_names

    sources: list[str] = ["import chisel3._", "import chisel3.util._", ""]
    sequential = False
    for position, name in enumerate(module_names):
        budget = config.max_statements if name == "TopModule" else min(3, config.max_statements)
        gen = _ModuleGen(
            rng,
            config,
            name,
            features_used,
            budget,
            allow_bundle_class=(name == "TopModule"),
        )
        sources.extend(gen.generate())
        sources.append("")
        sequential = sequential or gen.sequential

    return GeneratedProgram(
        seed=config.seed,
        index=index,
        source="\n".join(sources).rstrip() + "\n",
        top="TopModule",
        tops=tuple(module_names),
        sequential=sequential,
        features=tuple(sorted(features_used)),
        repro=config.repro_line(index),
    )
