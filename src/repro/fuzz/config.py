"""Configuration for the differential fuzzing subsystem.

A :class:`FuzzConfig` fully determines a fuzz session: the same
``(config, seed, index)`` triple always regenerates the same Chisel program,
so every corpus entry and every failure report is a one-line repro
(``python -m repro.fuzz --seed S --n 1 --skip K``).  Every knob is also
settable from the environment (``REPRO_FUZZ_*``); see EXPERIMENTS.md for the
catalogue.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.caching import stable_fingerprint

SEED_ENV = "REPRO_FUZZ_SEED"
ITERATIONS_ENV = "REPRO_FUZZ_ITERATIONS"
FEATURES_ENV = "REPRO_FUZZ_FEATURES"
CORPUS_ENV = "REPRO_FUZZ_CORPUS"
POINTS_ENV = "REPRO_FUZZ_POINTS"

# Feature toggles understood by the generator.  Each label gates a family of
# constructs; the generator records which ones a program actually exercised so
# the corpus can keep feature-diverse survivors.
ALL_FEATURES = (
    "arith",  # +, -, *, /, %, shifts at mixed widths
    "bitops",  # &, |, ^, ~, bit extraction, Cat/Fill/PopCount/Reverse
    "mux",  # Mux trees and boolean predicates
    "sint",  # signed values, casts and signed compares
    "reg",  # RegInit/RegNext/RegEnable state with enables
    "when",  # when/.elsewhen/.otherwise chains (wire defaults + overrides)
    "switch",  # FSM-like switch/is transition tables
    "vec",  # Vec IO, VecInit tables, Reg(Vec) pipelines, dynamic indexing
    "nested_bundle",  # nested anonymous Bundles in the IO
    "named_bundle",  # named (optionally parameterized) Bundle classes
    "multi_module",  # sibling module classes in one source file
    "mem",  # Mem/SyncReadMem: addressed writes, comb + sync read ports
)


def _env_int(name: str) -> int | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


def parse_feature_mask(raw: str) -> frozenset[str]:
    """Parse a comma-separated feature mask (``all`` or names from ALL_FEATURES)."""
    raw = raw.strip()
    if not raw or raw.lower() == "all":
        return frozenset(ALL_FEATURES)
    names = [part.strip() for part in raw.split(",") if part.strip()]
    unknown = [name for name in names if name not in ALL_FEATURES]
    if unknown:
        raise ValueError(
            f"unknown fuzz feature(s) {', '.join(sorted(unknown))}; "
            f"expected names from: {', '.join(ALL_FEATURES)}"
        )
    return frozenset(names)


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of one fuzz session.

    ``seed`` is the session seed: program ``i`` of the session derives its own
    generator stream from ``(seed, i)``, so a single integer pins the whole
    corpus.  ``max_statements``/``max_expr_depth``/``max_width`` are the size
    budget; ``features`` masks the construct families the generator may use;
    ``points`` sizes the generated stimulus per program.
    """

    seed: int = 0
    iterations: int = 200
    max_statements: int = 8
    max_expr_depth: int = 3
    max_width: int = 12
    points: int = 24
    features: frozenset[str] = field(default_factory=lambda: frozenset(ALL_FEATURES))
    corpus_path: str | None = None
    keep_survivors: int = 64
    shrink_failures: bool = True
    interesting_min_features: int = 4

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise ValueError("iterations must be >= 0")
        if self.max_statements < 1:
            raise ValueError("max_statements must be >= 1")
        if self.max_width < 2:
            raise ValueError("max_width must be >= 2")
        if self.points < 1:
            raise ValueError("points must be >= 1")

    def enabled(self, feature: str) -> bool:
        return feature in self.features

    def fingerprint(self) -> str:
        """Content fingerprint of every knob that shapes generated programs.

        Session-level knobs (iterations, corpus path, shrink toggle) are
        excluded: two sessions with the same fingerprint generate the same
        program for the same index.
        """
        return stable_fingerprint(
            {
                "seed": self.seed,
                "max_statements": self.max_statements,
                "max_expr_depth": self.max_expr_depth,
                "max_width": self.max_width,
                "points": self.points,
                "features": sorted(self.features),
            }
        )

    def with_seed(self, seed: int) -> "FuzzConfig":
        return replace(self, seed=seed)

    def repro_line(self, index: int) -> str:
        """One-line CLI repro for program ``index`` of this session.

        Includes every generator-shaping knob that differs from the defaults
        and has a CLI flag; the size-budget knobs (``max_statements``,
        ``max_expr_depth``, ``max_width``) have no flag, so configs that
        change them must be replayed through the Python API
        (``generate_program(config, index)``).
        """
        defaults = FuzzConfig()
        parts = [f"python -m repro.fuzz --seed {self.seed} --n 1 --skip {index}"]
        if self.points != defaults.points:
            parts.append(f"--points {self.points}")
        if self.features != defaults.features:
            parts.append(f"--features {','.join(sorted(self.features))}")
        return " ".join(parts)

    @classmethod
    def from_environment(cls) -> "FuzzConfig":
        config = cls()
        seed = _env_int(SEED_ENV)
        if seed is not None:
            config = replace(config, seed=seed)
        iterations = _env_int(ITERATIONS_ENV)
        if iterations is not None:
            config = replace(config, iterations=max(0, iterations))
        points = _env_int(POINTS_ENV)
        if points is not None:
            config = replace(config, points=max(1, points))
        features_raw = os.environ.get(FEATURES_ENV, "").strip()
        if features_raw:
            config = replace(config, features=parse_feature_mask(features_raw))
        corpus_raw = os.environ.get(CORPUS_ENV, "").strip()
        if corpus_raw and corpus_raw.lower() not in ("0", "off", "none"):
            config = replace(config, corpus_path=corpus_raw)
        return config
