"""Differential fuzzing subsystem: generative RTL corpus + conformance engine.

``python -m repro.fuzz --seed 0 --n 500`` generates 500 random-but-well-typed
Chisel programs and pushes each through every seam of the toolchain —
compile, Verilog re-parse, interpreter vs compiled vs trace simulation
backends, warm vs cold stage caches — shrinking and persisting anything that
diverges.  See README.md "Fuzzing & conformance" and the ``REPRO_FUZZ_*``
knobs in EXPERIMENTS.md.
"""

from repro.fuzz.config import ALL_FEATURES, FuzzConfig, parse_feature_mask
from repro.fuzz.corpus import CorpusEntry, CorpusStore, load_corpus_entries
from repro.fuzz.differential import (
    ConformanceFailure,
    ConformanceReport,
    build_testbench,
    check_program,
    check_source,
)
from repro.fuzz.generate import GeneratedProgram, generate_program
from repro.fuzz.session import (
    FuzzFinding,
    SessionResult,
    replay_entry,
    run_session,
    shrink_failure,
)
from repro.fuzz.shrink import count_significant_lines, shrink

__all__ = [
    "ALL_FEATURES",
    "ConformanceFailure",
    "ConformanceReport",
    "CorpusEntry",
    "CorpusStore",
    "FuzzConfig",
    "FuzzFinding",
    "GeneratedProgram",
    "SessionResult",
    "build_testbench",
    "check_program",
    "check_source",
    "count_significant_lines",
    "generate_program",
    "load_corpus_entries",
    "parse_feature_mask",
    "replay_entry",
    "run_session",
    "shrink",
    "shrink_failure",
]
