"""ChiselCompiler: Chisel source text → Verilog text + diagnostics.

Bundles the whole frontend (parse → elaborate → FIRRTL passes → emit) behind
one call, the way the paper's Compiler step wraps ``sbt``/firtool.  Every
failure mode is reported as a list of :class:`~repro.chisel.diagnostics.Diagnostic`
so the Reviewer can consume a uniform error list regardless of which stage
failed.

Compilation is incremental: beyond the whole-result memo keyed on exact
source text, every stage boundary has its own content-addressed cache —
parse by source hash (:func:`~repro.chisel.parser.parse_source_cached`),
elaboration per module-class structural hash
(:func:`~repro.chisel.elaborator.elaborate`), the FIRRTL pass pipeline and
Verilog emission per circuit fingerprint.  A ReChisel revision therefore only
re-runs the stages whose *input* structurally changed: candidates differing
in comments, whitespace or an unrelated class skip straight to the cached
Verilog, feeding the parsed-module and kernel caches downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.caching import LruCache, get_or_compute, text_key
from repro.diagnostics import ChiselError, Diagnostic, DiagnosticList, Severity
from repro.chisel.elaborator import elaborate
from repro.chisel.parser import parse_source_cached
from repro.firrtl import ir
from repro.firrtl.pass_manager import PassManager, circuit_fingerprint
from repro.verilog.emitter import EmitterError, emit_verilog

# Emission cache (stage 4): the emitter is a pure function of the lowered
# circuit, which is shared between cache-hitting compiles, so its fingerprint
# is usually already memoized on the module objects.
_emit_cache: LruCache[object] = LruCache(256, name="verilog_emit")


def _emit_cached(circuit: ir.Circuit) -> str:
    try:
        key = circuit_fingerprint(circuit)
    except RecursionError:
        return emit_verilog(circuit)
    return get_or_compute(
        _emit_cache, key, lambda: emit_verilog(circuit), cache_exceptions=(EmitterError,)
    )


# Compilation stages, reported so experiments can attribute errors.
STAGE_PARSE = "parse"
STAGE_ELABORATE = "elaborate"
STAGE_FIRRTL = "firrtl"
STAGE_EMIT = "emit"
STAGE_OK = "ok"


@dataclass
class CompileResult:
    """Outcome of compiling one Chisel source string."""

    success: bool
    verilog: str | None = None
    circuit: ir.Circuit | None = None
    diagnostics: list[Diagnostic] = field(default_factory=list)
    stage: str = STAGE_OK

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def render_feedback(self) -> str:
        """Render diagnostics the way sbt prints a failed compile."""
        if self.success:
            return "[success] Compilation succeeded"
        lines = [d.render() for d in self.diagnostics]
        lines.append("[error] (Compile / compileIncremental) Compilation failed")
        return "\n".join(lines)


class ChiselCompiler:
    """Compile Chisel source text to Verilog.

    Parameters
    ----------
    top:
        Optional top-module class name.  When omitted, the last class extending
        ``Module`` in the source is elaborated (matching how the benchmark
        specs name a single ``TopModule``).
    cache_size:
        Number of compile results memoized by source hash (``None``/0 turns
        caching off).  Compilation is a pure function of the source text, and
        identical candidate Chisel recurs constantly across samples and
        iterations in the paper-scale sweeps, so hits are the common case.
        Cached :class:`CompileResult` objects are shared — treat them as
        immutable.
    """

    def __init__(self, top: str | None = None, cache_size: int | None = 128):
        self.top = top
        self.pass_manager = PassManager()
        self._cache: LruCache[CompileResult] = LruCache(cache_size, name="chisel_compile")

    @property
    def cache_stats(self) -> dict[str, int]:
        return self._cache.stats

    def compile(self, source: str, top: str | None = None) -> CompileResult:
        top = top if top is not None else self.top
        if not self._cache.max_size:
            return self._compile(source, top)
        key = text_key(top, source)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        return self._cache.put(key, self._compile(source, top))

    def _compile(self, source: str, top: str | None) -> CompileResult:
        try:
            program = parse_source_cached(source)
        except ChiselError as exc:
            return CompileResult(False, diagnostics=[exc.diagnostic], stage=STAGE_PARSE)
        except RecursionError:
            return CompileResult(
                False,
                diagnostics=[
                    Diagnostic("source is too deeply nested to parse", code="PARSE")
                ],
                stage=STAGE_PARSE,
            )

        try:
            circuit = elaborate(program, top)
        except ChiselError as exc:
            return CompileResult(False, diagnostics=[exc.diagnostic], stage=STAGE_ELABORATE)

        result = self.pass_manager.run_cached(circuit)
        if not result.ok:
            return CompileResult(
                False,
                circuit=result.circuit,
                diagnostics=list(result.diagnostics),
                stage=STAGE_FIRRTL,
            )

        try:
            verilog = _emit_cached(result.circuit)
        except EmitterError as exc:
            return CompileResult(
                False,
                circuit=result.circuit,
                diagnostics=[Diagnostic(str(exc), code="EMIT")],
                stage=STAGE_EMIT,
            )

        warnings = [d for d in result.diagnostics if d.severity is not Severity.ERROR]
        return CompileResult(
            True, verilog=verilog, circuit=result.circuit, diagnostics=warnings, stage=STAGE_OK
        )
