"""Toolchain facades: the two "external tools" of the ReChisel workflow (Fig. 2).

:class:`~repro.toolchain.compiler.ChiselCompiler` turns Chisel source text
into Verilog text plus structured diagnostics (parse, elaboration and FIRRTL
pass errors are all reported through the same interface, the way ``sbt run``
reports them as one compile step).  :class:`~repro.toolchain.simulator.Simulator`
runs a compiled DUT against a reference module on a testbench and reports the
failed functional points.
"""

from repro.toolchain.compiler import ChiselCompiler, CompileResult
from repro.toolchain.simulator import SimulationOutcome, Simulator

__all__ = ["ChiselCompiler", "CompileResult", "Simulator", "SimulationOutcome"]
