"""Simulator facade: run a compiled DUT against a reference on a testbench.

Parsed module lists are memoized by source hash: the same DUT and reference
text recur across samples, iterations and experiment sweeps, and sharing the
parsed (immutable-by-convention) AST also lets the compiled-kernel cache in
:mod:`repro.verilog.compile_sim` hit without re-fingerprinting new objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caching import LruCache, text_key
from repro.sim.testbench import DeviceUnderTest, SimulationReport, Testbench, run_testbench
from repro.verilog.parser import VerilogParseError, parse_verilog
from repro.verilog.vast import VModule

_parse_cache: LruCache[list[VModule]] = LruCache(256, name="verilog_parse")


def _parse_cached(source: str) -> list[VModule]:
    """parse_verilog with an LRU memo keyed by source hash (parse errors are not cached)."""
    key = text_key(source)
    cached = _parse_cache.get(key)
    if cached is not None:
        return cached
    return _parse_cache.put(key, parse_verilog(source))


def clear_parse_cache() -> None:
    _parse_cache.clear()


@dataclass
class SimulationOutcome:
    """Outcome of the Simulator step: parseability of the DUT plus the report."""

    success: bool
    report: SimulationReport | None = None
    error: str | None = None

    def render_feedback(self) -> str:
        if self.error is not None:
            return f"simulation could not start: {self.error}"
        assert self.report is not None
        return self.report.render()


class Simulator:
    """Functional simulation of a DUT Verilog module against a reference.

    The reference may be a :class:`VModule` (e.g. golden Verilog compiled from
    the golden Chisel solution), Verilog source text, or any
    :class:`~repro.sim.testbench.DeviceUnderTest` (behavioural model).
    """

    def __init__(self, top: str | None = None):
        self.top = top

    def simulate(
        self,
        dut_verilog: str,
        reference: VModule | str | DeviceUnderTest,
        testbench: Testbench,
    ) -> SimulationOutcome:
        try:
            dut_module = self._select_module(_parse_cached(dut_verilog))
        except VerilogParseError as exc:
            return SimulationOutcome(False, error=f"DUT Verilog could not be parsed: {exc}")
        except (ValueError, IndexError) as exc:
            return SimulationOutcome(False, error=str(exc))

        if isinstance(reference, str):
            try:
                reference = self._select_module(_parse_cached(reference))
            except VerilogParseError as exc:
                return SimulationOutcome(False, error=f"reference Verilog could not be parsed: {exc}")

        report = run_testbench(dut_module, reference, testbench)
        return SimulationOutcome(report.passed, report=report)

    def _select_module(self, modules: list[VModule]) -> VModule:
        if not modules:
            raise ValueError("no Verilog module definitions found")
        if self.top is not None:
            for module in modules:
                if module.name == self.top:
                    return module
        return modules[-1]
