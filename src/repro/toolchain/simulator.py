"""Simulator facade: run a compiled DUT against a reference on a testbench.

Parsed module lists are memoized by source hash: the same DUT and reference
text recur across samples, iterations and experiment sweeps, and sharing the
parsed (immutable-by-convention) AST also lets the compiled-kernel cache in
:mod:`repro.verilog.compile_sim` hit without re-fingerprinting new objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caching import LruCache, text_key
from repro.sim.testbench import (
    DeviceUnderTest,
    SimulationReport,
    Testbench,
    run_testbench,
    run_testbenches,
)
from repro.verilog.parser import VerilogParseError, parse_verilog
from repro.verilog.vast import VModule

_parse_cache: LruCache[list[VModule]] = LruCache(256, name="verilog_parse")


def _parse_cached(source: str) -> list[VModule]:
    """parse_verilog with an LRU memo keyed by source hash (parse errors are not cached)."""
    key = text_key(source)
    cached = _parse_cache.get(key)
    if cached is not None:
        return cached
    return _parse_cache.put(key, parse_verilog(source))


def clear_parse_cache() -> None:
    _parse_cache.clear()


@dataclass
class SimulationOutcome:
    """Outcome of the Simulator step: parseability of the DUT plus the report."""

    success: bool
    report: SimulationReport | None = None
    error: str | None = None

    def render_feedback(self) -> str:
        if self.error is not None:
            return f"simulation could not start: {self.error}"
        assert self.report is not None
        return self.report.render()


@dataclass(frozen=True)
class SimulateRequest:
    """A deferred :meth:`Simulator.simulate` call.

    Attached to a simulate :class:`~repro.core.session.ToolCall` as its
    ``batch`` payload so executors and the service can coalesce requests from
    many concurrent sessions into one :meth:`Simulator.simulate_many` batch.
    ``run()`` is the sequential equivalent used when nothing batches.
    """

    simulator: "Simulator"
    dut_verilog: str
    reference: object
    testbench: Testbench

    def run(self) -> SimulationOutcome:
        return self.simulator.simulate(self.dut_verilog, self.reference, self.testbench)


class Simulator:
    """Functional simulation of a DUT Verilog module against a reference.

    The reference may be a :class:`VModule` (e.g. golden Verilog compiled from
    the golden Chisel solution), Verilog source text, or any
    :class:`~repro.sim.testbench.DeviceUnderTest` (behavioural model).
    """

    def __init__(self, top: str | None = None):
        self.top = top

    def simulate(
        self,
        dut_verilog: str,
        reference: VModule | str | DeviceUnderTest,
        testbench: Testbench,
    ) -> SimulationOutcome:
        prepared = self._prepare(dut_verilog, reference)
        if isinstance(prepared, SimulationOutcome):
            return prepared
        dut_module, reference = prepared
        report = run_testbench(dut_module, reference, testbench)
        return SimulationOutcome(report.passed, report=report)

    def simulate_many(
        self,
        items: list[tuple[str, VModule | str | DeviceUnderTest, Testbench]],
    ) -> list[SimulationOutcome]:
        """Batched :meth:`simulate`: coalesce same-shape runs into vector lanes.

        Outcome ``i`` equals ``simulate(*items[i])`` bit for bit; parse errors
        become per-item error outcomes while the remaining items still batch.
        """
        outcomes: list[SimulationOutcome | None] = [None] * len(items)
        jobs: list[tuple[VModule, DeviceUnderTest | VModule, Testbench]] = []
        positions: list[int] = []
        for index, (dut_verilog, reference, testbench) in enumerate(items):
            prepared = self._prepare(dut_verilog, reference)
            if isinstance(prepared, SimulationOutcome):
                outcomes[index] = prepared
            else:
                jobs.append((prepared[0], prepared[1], testbench))
                positions.append(index)
        for index, report in zip(positions, run_testbenches(jobs)):
            outcomes[index] = SimulationOutcome(report.passed, report=report)
        return outcomes

    def _prepare(
        self, dut_verilog: str, reference: VModule | str | DeviceUnderTest
    ) -> tuple[VModule, DeviceUnderTest | VModule] | SimulationOutcome:
        """Parse/select the DUT (and a textual reference); errors become outcomes."""
        try:
            dut_module = self._select_module(_parse_cached(dut_verilog))
        except VerilogParseError as exc:
            return SimulationOutcome(False, error=f"DUT Verilog could not be parsed: {exc}")
        except (ValueError, IndexError) as exc:
            return SimulationOutcome(False, error=str(exc))

        if isinstance(reference, str):
            try:
                reference = self._select_module(_parse_cached(reference))
            except VerilogParseError as exc:
                return SimulationOutcome(False, error=f"reference Verilog could not be parsed: {exc}")

        return dut_module, reference

    def _select_module(self, modules: list[VModule]) -> VModule:
        if not modules:
            raise ValueError("no Verilog module definitions found")
        if self.top is not None:
            for module in modules:
                if module.name == self.top:
                    return module
        return modules[-1]
