"""Abstract syntax tree for the Chisel/Scala subset.

The tree distinguishes Scala-level control flow (``for``, ``if``, ``val``)
from hardware statements (``:=`` connections, ``when``, ``switch``) only at
elaboration time; syntactically they are uniform statements, exactly as in
Scala.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chisel.diagnostics import SourceLocation


@dataclass
class Node:
    """Base class for all AST nodes."""

    location: SourceLocation


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class StringLit(Expr):
    value: str


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class Ident(Expr):
    name: str


@dataclass
class Placeholder(Expr):
    """A Scala ``_`` placeholder inside an expression (``_ + _``)."""


@dataclass
class FieldSelect(Expr):
    target: Expr
    name: str


@dataclass
class MethodCall(Expr):
    """A call ``target.name[typeArgs](args)``; ``target`` is None for bare calls."""

    target: Expr | None
    name: str
    args: list[Expr] = field(default_factory=list)
    type_args: list[str] = field(default_factory=list)
    # Some Scala calls are curried: Seq.fill(5)(0.U).  Extra argument lists are
    # stored in order after the first.
    extra_arg_lists: list[list[Expr]] = field(default_factory=list)


@dataclass
class Apply(Expr):
    """Application of an arbitrary expression: ``expr(args)`` (indexing, Vec access)."""

    target: Expr
    args: list[Expr] = field(default_factory=list)


@dataclass
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class UnaryOp(Expr):
    op: str
    operand: Expr


@dataclass
class Lambda(Expr):
    params: list[str]
    body: Expr


@dataclass
class BundleLiteral(Expr):
    """``new Bundle { val a = Input(...) ... }``"""

    members: list["ValDef"]


@dataclass
class NewInstance(Expr):
    class_name: str
    args: list[Expr] = field(default_factory=list)


@dataclass
class IfExpr(Expr):
    """Scala-level ``if (c) a else b`` used in expression position."""

    condition: Expr
    then_value: Expr
    else_value: Expr | None


@dataclass
class WithClockExpr(Expr):
    """``withClock(clk) { expr }`` used in expression position.

    The body is a statement list; the value of the expression is the value of
    the final expression statement, matching Scala block semantics.
    """

    clock: Expr | None
    reset: Expr | None
    body: list["Stmt"] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class ValDef(Stmt):
    name: str
    value: Expr
    mutable: bool = False
    type_annotation: str | None = None


@dataclass
class Assign(Stmt):
    """Scala reassignment ``x = expr`` or update ``x(i) = expr``."""

    target: Expr
    value: Expr


@dataclass
class Connect(Stmt):
    """Chisel connection ``sink := source``."""

    target: Expr
    value: Expr


@dataclass
class BulkConnect(Stmt):
    """Chisel bulk connection ``sink <> source``."""

    target: Expr
    value: Expr


@dataclass
class WhenBranch:
    condition: Expr | None  # None for the trailing .otherwise branch
    body: list[Stmt] = field(default_factory=list)


@dataclass
class WhenStmt(Stmt):
    branches: list[WhenBranch] = field(default_factory=list)


@dataclass
class SwitchCase:
    """One clause inside ``switch { ... }``.

    ``keyword`` is normally ``is``; anything else (``default``, ``otherwise``)
    is syntactically accepted and rejected during elaboration with the same
    message the Scala compiler would produce — this is exactly the failure
    mode of the paper's Fig. 4 non-progress-loop example.
    """

    keyword: str
    patterns: list[Expr]
    body: list[Stmt]
    location: SourceLocation | None = None


@dataclass
class SwitchStmt(Stmt):
    subject: Expr
    cases: list[SwitchCase] = field(default_factory=list)


@dataclass
class ForStmt(Stmt):
    variable: str
    iterable: Expr
    body: list[Stmt] = field(default_factory=list)


@dataclass
class IfStmt(Stmt):
    condition: Expr
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)


@dataclass
class WithClockStmt(Stmt):
    """``withClock(clk) { ... }`` / ``withClockAndReset(clk, rst) { ... }``."""

    clock: Expr | None
    reset: Expr | None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Expr


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Param:
    name: str
    type_annotation: str | None = None
    default: Expr | None = None


@dataclass
class ClassDef(Node):
    name: str
    params: list[Param]
    parents: list[str]
    body: list[Stmt]

    @property
    def is_module(self) -> bool:
        return any(p in ("Module", "RawModule", "MultiIOModule") for p in self.parents)

    @property
    def is_raw_module(self) -> bool:
        return "RawModule" in self.parents


@dataclass
class Program(Node):
    imports: list[str]
    classes: list[ClassDef]

    def find_class(self, name: str) -> ClassDef | None:
        for cls in self.classes:
            if cls.name == name:
                return cls
        return None

    def module_classes(self) -> list[ClassDef]:
        return [cls for cls in self.classes if cls.is_module]
