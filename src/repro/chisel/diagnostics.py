"""Compatibility shim: diagnostics live in :mod:`repro.diagnostics`.

The Chisel frontend historically exposed diagnostics from this module; they
were moved to a package-neutral location so the FIRRTL and Verilog layers can
use them without importing the Chisel frontend.
"""

from repro.diagnostics import (
    ChiselError,
    Diagnostic,
    DiagnosticList,
    Severity,
    SourceLocation,
)

__all__ = [
    "ChiselError",
    "Diagnostic",
    "DiagnosticList",
    "Severity",
    "SourceLocation",
]
