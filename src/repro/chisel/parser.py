"""Recursive-descent parser for the Chisel/Scala subset.

The parser is intentionally lenient in places where LLM-generated code varies
(newlines before ``.elsewhen``, optional semicolons, either ``} .otherwise {``
or ``}.otherwise {``) but strict about structure so that malformed code
produces a compiler diagnostic rather than silently parsing — unparseable
output is one of the syntax-error classes the reflection loop must handle.
"""

from __future__ import annotations

from repro.caching import LruCache, get_or_compute, text_key
from repro.chisel import ast
from repro.chisel.diagnostics import ChiselError, SourceLocation
from repro.chisel.lexer import Token, TokenKind, tokenize

# Infix identifiers treated as binary operators (Scala method infix notation).
_NAMED_INFIX = {"until", "to", "min", "max"}

_UNARY_OPS = {"!", "~", "-"}


class Parser:
    """Parse a token stream into a :class:`repro.chisel.ast.Program`."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0
        self._placeholder_counter = 0

    # ------------------------------------------------------------------ utils

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _peek_skipping_newlines(self, offset: int = 0) -> Token:
        index = self.pos
        skipped = 0
        while index < len(self.tokens):
            token = self.tokens[index]
            if token.kind is TokenKind.NEWLINE:
                index += 1
                continue
            if skipped == offset:
                return token
            skipped += 1
            index += 1
        return self.tokens[-1]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if self.pos < len(self.tokens) - 1:
            self.pos += 1
        return token

    def _skip_newlines(self) -> None:
        while self._peek().kind is TokenKind.NEWLINE or self._peek().is_punct(";"):
            self._advance()

    def _error(self, message: str, token: Token | None = None) -> ChiselError:
        token = token or self._peek()
        return ChiselError.at(message, token.location, code="PARSE")

    def _expect_punct(self, punct: str) -> Token:
        token = self._peek()
        if not token.is_punct(punct):
            raise self._error(f"expected {punct!r} but found {token.text!r}")
        return self._advance()

    def _expect_op(self, op: str) -> Token:
        token = self._peek()
        if not token.is_op(op):
            raise self._error(f"expected {op!r} but found {token.text!r}")
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise self._error(f"expected identifier but found {token.text!r}")
        return self._advance()

    # ------------------------------------------------------------- top level

    def parse_program(self) -> ast.Program:
        imports: list[str] = []
        classes: list[ast.ClassDef] = []
        start = self._peek().location
        self._skip_newlines()
        while self._peek().kind is not TokenKind.EOF:
            token = self._peek()
            if token.is_keyword("import"):
                imports.append(self._parse_import())
            elif token.is_keyword("package"):
                self._skip_line()
            elif token.is_keyword("class"):
                classes.append(self._parse_class())
            elif token.is_keyword("object"):
                classes.append(self._parse_object())
            else:
                raise self._error(
                    f"expected class or import at top level but found {token.text!r}"
                )
            self._skip_newlines()
        return ast.Program(start, imports, classes)

    def _skip_line(self) -> None:
        while self._peek().kind not in (TokenKind.NEWLINE, TokenKind.EOF):
            self._advance()

    def _parse_import(self) -> str:
        self._advance()  # import
        parts: list[str] = []
        while self._peek().kind not in (TokenKind.NEWLINE, TokenKind.EOF):
            parts.append(self._advance().text)
        return "".join(parts)

    def _parse_class(self) -> ast.ClassDef:
        loc = self._advance().location  # class
        name = self._expect_ident().text
        params: list[ast.Param] = []
        if self._peek().is_punct("("):
            params = self._parse_param_list()
        parents: list[str] = []
        if self._peek().is_keyword("extends"):
            self._advance()
            parents.append(self._parse_type_name())
            while self._peek().is_keyword("with"):
                self._advance()
                parents.append(self._parse_type_name())
        body: list[ast.Stmt] = []
        self._skip_newlines()
        if self._peek().is_punct("{"):
            body = self._parse_block()
        return ast.ClassDef(loc, name, params, parents, body)

    def _parse_object(self) -> ast.ClassDef:
        loc = self._advance().location  # object
        name = self._expect_ident().text
        parents: list[str] = []
        if self._peek().is_keyword("extends"):
            self._advance()
            parents.append(self._parse_type_name())
        self._skip_newlines()
        body: list[ast.Stmt] = []
        if self._peek().is_punct("{"):
            body = self._parse_block()
        return ast.ClassDef(loc, name, [], parents, body)

    def _parse_type_name(self) -> str:
        name = self._expect_ident().text
        # Constructor arguments on the parent (``extends Module``) and type
        # parameters are accepted and discarded.
        if self._peek().is_punct("("):
            depth = 0
            while True:
                token = self._advance()
                if token.is_punct("("):
                    depth += 1
                elif token.is_punct(")"):
                    depth -= 1
                    if depth == 0:
                        break
        return name

    def _parse_param_list(self) -> list[ast.Param]:
        self._expect_punct("(")
        params: list[ast.Param] = []
        self._skip_newlines()
        while not self._peek().is_punct(")"):
            while self._peek().is_keyword("val", "var", "implicit", "override"):
                self._advance()
            name = self._expect_ident().text
            type_annotation = None
            default = None
            if self._peek().is_punct(":"):
                self._advance()
                type_annotation = self._parse_type_annotation()
            if self._peek().is_op("="):
                self._advance()
                default = self.parse_expression()
            params.append(ast.Param(name, type_annotation, default))
            if self._peek().is_punct(","):
                self._advance()
                self._skip_newlines()
        self._expect_punct(")")
        return params

    def _parse_type_annotation(self) -> str:
        parts: list[str] = [self._expect_ident().text]
        if self._peek().is_punct("["):
            depth = 0
            while True:
                token = self._advance()
                parts.append(token.text)
                if token.is_punct("["):
                    depth += 1
                elif token.is_punct("]"):
                    depth -= 1
                    if depth == 0:
                        break
        return "".join(parts)

    # ------------------------------------------------------------ statements

    def _parse_block(self) -> list[ast.Stmt]:
        self._expect_punct("{")
        stmts: list[ast.Stmt] = []
        self._skip_newlines()
        while not self._peek().is_punct("}"):
            if self._peek().kind is TokenKind.EOF:
                raise self._error("unexpected end of file inside block (missing '}')")
            stmts.append(self.parse_statement())
            self._skip_newlines()
        self._expect_punct("}")
        return stmts

    def parse_statement(self) -> ast.Stmt:
        self._skip_newlines()
        token = self._peek()
        if token.is_keyword("val", "var", "lazy"):
            return self._parse_val_def()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("if"):
            return self._parse_if_statement()
        if token.is_keyword("import"):
            self._parse_import()
            return ast.ExprStmt(token.location, ast.BoolLit(token.location, True))
        if token.is_keyword("def"):
            raise ChiselError.at(
                "method definitions (def) are not supported inside modules in this "
                "Chisel subset; inline the logic instead",
                token.location,
                code="PARSE",
            )
        if token.is_ident("when"):
            return self._parse_when()
        if token.is_ident("switch"):
            return self._parse_switch()
        if token.is_ident("withClock", "withReset", "withClockAndReset"):
            return self._parse_with_clock()
        return self._parse_expression_statement()

    def _parse_with_clock(self) -> ast.Stmt:
        token = self._advance()
        self._expect_punct("(")
        first = self.parse_expression()
        second = None
        if self._peek().is_punct(","):
            self._advance()
            second = self.parse_expression()
        self._expect_punct(")")
        self._skip_newlines()
        body = self._parse_block_or_single()
        if token.text == "withClock":
            return ast.WithClockStmt(token.location, first, None, body)
        if token.text == "withReset":
            return ast.WithClockStmt(token.location, None, first, body)
        return ast.WithClockStmt(token.location, first, second, body)

    def _parse_val_def(self) -> ast.Stmt:
        first = self._advance()
        mutable = first.text == "var"
        if first.text == "lazy":
            self._advance()  # val
        name_token = self._expect_ident()
        type_annotation = None
        if self._peek().is_punct(":"):
            self._advance()
            type_annotation = self._parse_type_annotation()
        self._expect_op("=")
        value = self.parse_expression()
        return ast.ValDef(first.location, name_token.text, value, mutable, type_annotation)

    def _parse_for(self) -> ast.Stmt:
        loc = self._advance().location  # for
        self._expect_punct("(")
        variable = self._expect_ident().text
        self._expect_op("<-")
        iterable = self.parse_expression()
        self._expect_punct(")")
        self._skip_newlines()
        body = self._parse_block_or_single()
        return ast.ForStmt(loc, variable, iterable, body)

    def _parse_if_statement(self) -> ast.Stmt:
        loc = self._advance().location  # if
        self._expect_punct("(")
        condition = self.parse_expression()
        self._expect_punct(")")
        self._skip_newlines()
        then_body = self._parse_block_or_single()
        else_body: list[ast.Stmt] = []
        if self._peek_skipping_newlines().is_keyword("else"):
            self._skip_newlines()
            self._advance()
            self._skip_newlines()
            if self._peek().is_keyword("if"):
                else_body = [self._parse_if_statement()]
            else:
                else_body = self._parse_block_or_single()
        return ast.IfStmt(loc, condition, then_body, else_body)

    def _parse_block_or_single(self) -> list[ast.Stmt]:
        if self._peek().is_punct("{"):
            return self._parse_block()
        return [self.parse_statement()]

    def _parse_when(self) -> ast.Stmt:
        loc = self._peek().location
        branches: list[ast.WhenBranch] = []
        self._advance()  # when
        self._expect_punct("(")
        condition = self.parse_expression()
        self._expect_punct(")")
        self._skip_newlines()
        body = self._parse_block()
        branches.append(ast.WhenBranch(condition, body))
        while True:
            next_token = self._peek_skipping_newlines()
            if not next_token.is_punct("."):
                break
            follow = self._peek_after_dot()
            if follow not in ("elsewhen", "otherwise"):
                break
            self._skip_newlines()
            self._advance()  # '.'
            keyword = self._advance().text
            if keyword == "elsewhen":
                self._expect_punct("(")
                cond = self.parse_expression()
                self._expect_punct(")")
                self._skip_newlines()
                branches.append(ast.WhenBranch(cond, self._parse_block()))
            else:  # otherwise
                if self._peek().is_punct("("):
                    # ``.otherwise() { ... }`` is not valid Chisel; surface it
                    # as a parse error the same way scalac would.
                    raise self._error(
                        "otherwise does not take arguments", self._peek()
                    )
                self._skip_newlines()
                branches.append(ast.WhenBranch(None, self._parse_block()))
                break
        return ast.WhenStmt(loc, branches)

    def _peek_after_dot(self) -> str:
        index = self.pos
        while index < len(self.tokens) and self.tokens[index].kind is TokenKind.NEWLINE:
            index += 1
        if index < len(self.tokens) and self.tokens[index].is_punct("."):
            index += 1
            if index < len(self.tokens):
                return self.tokens[index].text
        return ""

    def _parse_switch(self) -> ast.Stmt:
        loc = self._advance().location  # switch
        self._expect_punct("(")
        subject = self.parse_expression()
        self._expect_punct(")")
        self._skip_newlines()
        if not self._peek().is_punct("{") and not self._peek().is_punct("("):
            raise self._error("expected '{' after switch(...)")
        open_punct = self._advance().text
        close_punct = "}" if open_punct == "{" else ")"
        cases: list[ast.SwitchCase] = []
        self._skip_newlines()
        while not self._peek().is_punct(close_punct):
            if self._peek().kind is TokenKind.EOF:
                raise self._error("unexpected end of file inside switch block")
            cases.append(self._parse_switch_case())
            self._skip_newlines()
        self._advance()  # closing punct
        return ast.SwitchStmt(loc, subject, cases)

    def _parse_switch_case(self) -> ast.SwitchCase:
        token = self._peek()
        if token.kind not in (TokenKind.IDENT, TokenKind.KEYWORD) and not token.is_op("_"):
            raise self._error(
                f"expected 'is(...)' clause inside switch but found {token.text!r}"
            )
        keyword = self._advance().text
        patterns: list[ast.Expr] = []
        if self._peek().is_punct("("):
            self._advance()
            while not self._peek().is_punct(")"):
                patterns.append(self.parse_expression())
                if self._peek().is_punct(","):
                    self._advance()
            self._expect_punct(")")
        self._skip_newlines()
        body: list[ast.Stmt] = []
        if self._peek().is_punct("{"):
            body = self._parse_block()
        return ast.SwitchCase(keyword, patterns, body, token.location)

    def _parse_expression_statement(self) -> ast.Stmt:
        loc = self._peek().location
        expr = self.parse_expression()
        token = self._peek()
        if token.is_op(":="):
            self._advance()
            value = self.parse_expression()
            return ast.Connect(loc, expr, value)
        if token.is_op("<>", "<->"):
            self._advance()
            value = self.parse_expression()
            return ast.BulkConnect(loc, expr, value)
        if token.is_op("="):
            self._advance()
            value = self.parse_expression()
            return ast.Assign(loc, expr, value)
        if token.is_op("+=", "-=", "*=", "/=", "&=", "|=", "^="):
            self._advance()
            value = self.parse_expression()
            combined = ast.BinaryOp(token.location, token.text[0], expr, value)
            return ast.Assign(loc, expr, combined)
        return ast.ExprStmt(loc, expr)

    # ----------------------------------------------------------- expressions

    def parse_expression(self) -> ast.Expr:
        return self._parse_named_infix()

    def _parse_named_infix(self) -> ast.Expr:
        left = self._parse_or()
        while self._peek().is_ident(*_NAMED_INFIX):
            op = self._advance().text
            right = self._parse_or()
            left = ast.BinaryOp(left.location, op, left, right)
        return left

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._peek().is_op("||"):
            loc = self._advance().location
            right = self._parse_and()
            left = ast.BinaryOp(loc, "||", left, right)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_bitor()
        while self._peek().is_op("&&"):
            loc = self._advance().location
            right = self._parse_bitor()
            left = ast.BinaryOp(loc, "&&", left, right)
        return left

    def _parse_bitor(self) -> ast.Expr:
        left = self._parse_bitxor()
        while self._peek().is_op("|"):
            loc = self._advance().location
            right = self._parse_bitxor()
            left = ast.BinaryOp(loc, "|", left, right)
        return left

    def _parse_bitxor(self) -> ast.Expr:
        left = self._parse_bitand()
        while self._peek().is_op("^"):
            loc = self._advance().location
            right = self._parse_bitand()
            left = ast.BinaryOp(loc, "^", left, right)
        return left

    def _parse_bitand(self) -> ast.Expr:
        left = self._parse_equality()
        while self._peek().is_op("&"):
            loc = self._advance().location
            right = self._parse_equality()
            left = ast.BinaryOp(loc, "&", left, right)
        return left

    def _parse_equality(self) -> ast.Expr:
        left = self._parse_relational()
        while self._peek().is_op("===", "=/=", "==", "!="):
            op = self._advance()
            right = self._parse_relational()
            left = ast.BinaryOp(op.location, op.text, left, right)
        return left

    def _parse_relational(self) -> ast.Expr:
        left = self._parse_shift()
        while self._peek().is_op("<", ">", "<=", ">="):
            op = self._advance()
            right = self._parse_shift()
            left = ast.BinaryOp(op.location, op.text, left, right)
        return left

    def _parse_shift(self) -> ast.Expr:
        left = self._parse_cat()
        while self._peek().is_op("<<", ">>"):
            op = self._advance()
            right = self._parse_cat()
            left = ast.BinaryOp(op.location, op.text, left, right)
        return left

    def _parse_cat(self) -> ast.Expr:
        left = self._parse_additive()
        while self._peek().is_op("##"):
            op = self._advance()
            right = self._parse_additive()
            left = ast.BinaryOp(op.location, "##", left, right)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._peek().is_op("+", "-", "+&", "-&", "+%", "-%"):
            op = self._advance()
            right = self._parse_multiplicative()
            left = ast.BinaryOp(op.location, op.text, left, right)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._peek().is_op("*", "/", "%"):
            op = self._advance()
            right = self._parse_unary()
            left = ast.BinaryOp(op.location, op.text, left, right)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.is_op(*_UNARY_OPS):
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(token.location, token.text, operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.is_punct("."):
                follow = self._peek(1)
                if follow.text in ("elsewhen", "otherwise"):
                    break
                self._advance()
                name_token = self._peek()
                if name_token.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
                    raise self._error("expected member name after '.'")
                self._advance()
                expr = self._finish_member(expr, name_token.text, name_token.location)
                continue
            if token.is_punct("("):
                args = self._parse_args()
                expr = ast.Apply(token.location, expr, args)
                continue
            # Method-chain continuation across a line break: only when the
            # next non-newline token is '.' followed by a member name.
            if token.kind is TokenKind.NEWLINE and self._peek_after_dot() not in (
                "",
                "elsewhen",
                "otherwise",
            ):
                next_real = self._peek_skipping_newlines()
                if next_real.is_punct("."):
                    self._skip_newlines()
                    continue
            break
        return expr

    def _finish_member(self, target: ast.Expr, name: str, loc: SourceLocation) -> ast.Expr:
        type_args: list[str] = []
        if self._peek().is_punct("["):
            self._advance()
            while not self._peek().is_punct("]"):
                type_args.append(self._advance().text)
            self._expect_punct("]")
        if self._peek().is_punct("("):
            args = self._parse_args()
            call = ast.MethodCall(loc, target, name, args, type_args)
            while self._peek().is_punct("("):
                call.extra_arg_lists.append(self._parse_args())
            return call
        if type_args:
            return ast.MethodCall(loc, target, name, [], type_args)
        return ast.FieldSelect(loc, target, name)

    def _parse_args(self) -> list[ast.Expr]:
        self._expect_punct("(")
        args: list[ast.Expr] = []
        self._skip_newlines()
        while not self._peek().is_punct(")"):
            args.append(self._parse_argument())
            self._skip_newlines()
            if self._peek().is_punct(","):
                self._advance()
                self._skip_newlines()
        self._expect_punct(")")
        return args

    def _parse_argument(self) -> ast.Expr:
        # Detect explicit lambdas: ``x => expr`` or ``(a, b) => expr``.
        lambda_expr = self._try_parse_lambda()
        if lambda_expr is not None:
            return lambda_expr
        expr = self.parse_expression()
        # Named arguments (``init = 0.U``) are accepted; the name is dropped.
        if isinstance(expr, ast.Ident) and self._peek().is_op("="):
            self._advance()
            return self.parse_expression()
        placeholders = _count_placeholders(expr)
        if placeholders:
            params = [f"_arg{i}" for i in range(placeholders)]
            body = _replace_placeholders(expr, iter(params))
            return ast.Lambda(expr.location, params, body)
        return expr

    def _try_parse_lambda(self) -> ast.Lambda | None:
        start = self.pos
        token = self._peek()
        params: list[str] = []
        if token.kind is TokenKind.IDENT and self._peek(1).is_op("=>"):
            params = [token.text]
            self._advance()
            self._advance()
        elif token.is_punct("("):
            index = self.pos + 1
            names: list[str] = []
            ok = True
            while index < len(self.tokens):
                tok = self.tokens[index]
                if tok.kind is TokenKind.IDENT:
                    names.append(tok.text)
                    index += 1
                    if self.tokens[index].is_punct(","):
                        index += 1
                        continue
                    if self.tokens[index].is_punct(")"):
                        index += 1
                        break
                ok = False
                break
            if ok and names and index < len(self.tokens) and self.tokens[index].is_op("=>"):
                params = names
                self.pos = index + 1
        if not params:
            self.pos = start
            return None
        body = self.parse_expression()
        return ast.Lambda(token.location, params, body)

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INTEGER:
            self._advance()
            text = token.text.replace("_", "")
            value = int(text, 16) if text.lower().startswith("0x") else int(text)
            return ast.IntLit(token.location, value)
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.StringLit(token.location, token.text)
        if token.is_keyword("true"):
            self._advance()
            return ast.BoolLit(token.location, True)
        if token.is_keyword("false"):
            self._advance()
            return ast.BoolLit(token.location, False)
        if token.is_keyword("new"):
            return self._parse_new()
        if token.is_keyword("if"):
            return self._parse_if_expression()
        if token.is_op("_"):
            self._advance()
            return ast.Placeholder(token.location)
        if token.is_punct("("):
            self._advance()
            expr = self.parse_expression()
            self._expect_punct(")")
            return expr
        if token.is_punct("{"):
            # Block expression: evaluate statements, value of the last one.
            raise self._error(
                "block expressions are not supported in this Chisel subset"
            )
        if token.is_ident("withClock", "withReset", "withClockAndReset"):
            return self._parse_with_clock_expr()
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._peek().is_punct("(") and token.text[0].isupper():
                # Constructor-style call (UInt(8.W), Wire(...), VecInit(...)).
                args = self._parse_args()
                call = ast.MethodCall(token.location, None, token.text, args)
                while self._peek().is_punct("("):
                    call.extra_arg_lists.append(self._parse_args())
                return call
            if self._peek().is_punct("("):
                args = self._parse_args()
                call = ast.MethodCall(token.location, None, token.text, args)
                while self._peek().is_punct("("):
                    call.extra_arg_lists.append(self._parse_args())
                return call
            return ast.Ident(token.location, token.text)
        raise self._error(f"unexpected token {token.text!r} in expression", token)

    def _parse_with_clock_expr(self) -> ast.Expr:
        token = self._advance()
        self._expect_punct("(")
        first = self.parse_expression()
        second = None
        if self._peek().is_punct(","):
            self._advance()
            second = self.parse_expression()
        self._expect_punct(")")
        self._skip_newlines()
        body = self._parse_block()
        if token.text == "withClock":
            return ast.WithClockExpr(token.location, first, None, body)
        if token.text == "withReset":
            return ast.WithClockExpr(token.location, None, first, body)
        return ast.WithClockExpr(token.location, first, second, body)

    def _parse_new(self) -> ast.Expr:
        loc = self._advance().location  # new
        name = self._expect_ident().text
        if name == "Bundle":
            self._skip_newlines()
            members = self._parse_bundle_body()
            return ast.BundleLiteral(loc, members)
        args: list[ast.Expr] = []
        if self._peek().is_punct("("):
            args = self._parse_args()
        return ast.NewInstance(loc, name, args)

    def _parse_bundle_body(self) -> list[ast.ValDef]:
        self._expect_punct("{")
        members: list[ast.ValDef] = []
        self._skip_newlines()
        while not self._peek().is_punct("}"):
            stmt = self.parse_statement()
            if not isinstance(stmt, ast.ValDef):
                raise ChiselError.at(
                    "only val definitions are allowed inside a Bundle literal",
                    stmt.location,
                    code="PARSE",
                )
            members.append(stmt)
            self._skip_newlines()
        self._expect_punct("}")
        return members

    def _parse_if_expression(self) -> ast.Expr:
        loc = self._advance().location  # if
        self._expect_punct("(")
        condition = self.parse_expression()
        self._expect_punct(")")
        then_value = self.parse_expression()
        else_value = None
        if self._peek_skipping_newlines().is_keyword("else"):
            self._skip_newlines()
            self._advance()
            else_value = self.parse_expression()
        return ast.IfExpr(loc, condition, then_value, else_value)


# ---------------------------------------------------------------------------
# Placeholder (underscore lambda) rewriting helpers
# ---------------------------------------------------------------------------


def _count_placeholders(expr: ast.Expr) -> int:
    count = 0
    for child in _walk(expr):
        if isinstance(child, ast.Placeholder):
            count += 1
    return count


def _walk(expr: ast.Expr):
    yield expr
    if isinstance(expr, ast.BinaryOp):
        yield from _walk(expr.left)
        yield from _walk(expr.right)
    elif isinstance(expr, ast.UnaryOp):
        yield from _walk(expr.operand)
    elif isinstance(expr, ast.FieldSelect):
        yield from _walk(expr.target)
    elif isinstance(expr, ast.MethodCall):
        if expr.target is not None:
            yield from _walk(expr.target)
        for arg in expr.args:
            yield from _walk(arg)
    elif isinstance(expr, ast.Apply):
        yield from _walk(expr.target)
        for arg in expr.args:
            yield from _walk(arg)


def _replace_placeholders(expr: ast.Expr, names) -> ast.Expr:
    if isinstance(expr, ast.Placeholder):
        return ast.Ident(expr.location, next(names))
    if isinstance(expr, ast.BinaryOp):
        left = _replace_placeholders(expr.left, names)
        right = _replace_placeholders(expr.right, names)
        return ast.BinaryOp(expr.location, expr.op, left, right)
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.location, expr.op, _replace_placeholders(expr.operand, names))
    if isinstance(expr, ast.FieldSelect):
        return ast.FieldSelect(expr.location, _replace_placeholders(expr.target, names), expr.name)
    if isinstance(expr, ast.MethodCall):
        target = None
        if expr.target is not None:
            target = _replace_placeholders(expr.target, names)
        args = [_replace_placeholders(a, names) for a in expr.args]
        call = ast.MethodCall(expr.location, target, expr.name, args, list(expr.type_args))
        call.extra_arg_lists = [
            [_replace_placeholders(a, names) for a in arg_list]
            for arg_list in expr.extra_arg_lists
        ]
        return call
    if isinstance(expr, ast.Apply):
        target = _replace_placeholders(expr.target, names)
        args = [_replace_placeholders(a, names) for a in expr.args]
        return ast.Apply(expr.location, target, args)
    return expr


def parse_source(source: str, file: str = "Main.scala") -> ast.Program:
    """Tokenise and parse Chisel source text into a :class:`Program`."""
    tokens = tokenize(source, file)
    return Parser(tokens).parse_program()


# ---------------------------------------------------------------------------
# Parse cache (stage 1 of the incremental compile pipeline)
# ---------------------------------------------------------------------------

_parse_cache: LruCache[object] = LruCache(256, name="chisel_parse")


def parse_source_cached(source: str, file: str = "Main.scala") -> ast.Program:
    """:func:`parse_source` memoized by exact source text.

    Parse failures are cached too and re-raised on hit.  The returned
    :class:`Program` is shared between callers: treat it as immutable.
    ``RecursionError`` is never cached — it depends on the caller's stack.
    """
    return get_or_compute(
        _parse_cache,
        text_key(file, source),
        lambda: parse_source(source, file),
        cache_exceptions=(ChiselError,),
    )


def clear_parse_cache() -> None:
    _parse_cache.clear()
