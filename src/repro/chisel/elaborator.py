"""Elaboration: execute the Scala-level program and build a FIRRTL circuit.

Elaboration mirrors real Chisel: the Scala program *runs* (loops unroll,
``val``s bind, integer arithmetic folds) and hardware constructors
(``Wire``, ``Reg``, ``IO``, operators on hardware values) append nodes to the
module under construction.  Diagnostics raised here carry the Table II error
class in their ``code`` field (``A1`` .. ``C2``) so downstream experiment code
can classify them without parsing message text.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field

from repro.caching import LruCache, get_or_compute, structural_fingerprint, text_key
from repro.chisel import ast
from repro.chisel import values as v
from repro.chisel.diagnostics import ChiselError, SourceLocation
from repro.chisel.naming import Namer
from repro.firrtl import ir
from repro.hdl.literals import LiteralError, parse_literal


class Scope:
    """A lexical scope chain for Scala-level bindings."""

    def __init__(self, parent: "Scope | None" = None):
        self.parent = parent
        self.bindings: dict[str, object] = {}
        self.mutable: set[str] = set()

    def define(self, name: str, value: object, mutable: bool = False) -> None:
        self.bindings[name] = value
        if mutable:
            self.mutable.add(name)

    def lookup(self, name: str) -> object:
        scope: Scope | None = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        raise KeyError(name)

    def contains(self, name: str) -> bool:
        try:
            self.lookup(name)
            return True
        except KeyError:
            return False

    def assign(self, name: str, value: object) -> bool:
        """Reassign an existing binding; returns False if it is immutable."""
        scope: Scope | None = self
        while scope is not None:
            if name in scope.bindings:
                if name not in scope.mutable:
                    return False
                scope.bindings[name] = value
                return True
            scope = scope.parent
        raise KeyError(name)

    def all_names(self) -> list[str]:
        names: list[str] = []
        scope: Scope | None = self
        while scope is not None:
            names.extend(scope.bindings.keys())
            scope = scope.parent
        return names


@dataclass
class ModuleContext:
    """Mutable state of the module currently being elaborated."""

    name: str
    is_raw: bool
    ports: list[ir.Port] = field(default_factory=list)
    body: ir.Block = field(default_factory=ir.Block)
    block_stack: list[ir.Block] = field(default_factory=list)
    namer: Namer = field(default_factory=Namer)
    clock_stack: list[v.HwValue | None] = field(default_factory=list)
    reset_stack: list[v.HwValue | None] = field(default_factory=list)

    def current_block(self) -> ir.Block:
        return self.block_stack[-1] if self.block_stack else self.body

    def emit(self, stmt: ir.Stmt) -> None:
        self.current_block().append(stmt)

    def current_clock(self) -> v.HwValue | None:
        for clk in reversed(self.clock_stack):
            if clk is not None:
                return clk
        return None

    def current_reset(self) -> v.HwValue | None:
        for rst in reversed(self.reset_stack):
            if rst is not None:
                return rst
        return None


class Elaborator:
    """Elaborate a parsed program into a FIRRTL circuit."""

    def __init__(self, program: ast.Program, top: str | None = None):
        self.program = program
        self.top = top

    # ------------------------------------------------------------------ API

    def elaborate(self) -> ir.Circuit:
        cls = resolve_top(self.program, self.top)
        module = self._elaborate_module(cls)
        return ir.Circuit(module.name, [module])

    # -------------------------------------------------------------- modules

    def _elaborate_module(self, cls: ast.ClassDef) -> ir.Module:
        ctx = ModuleContext(name=cls.name, is_raw=cls.is_raw_module)
        scope = Scope()
        self._bind_builtin_constants(scope)

        for param in cls.params:
            if param.default is None:
                raise ChiselError.at(
                    f"module parameter {param.name!r} has no default value; "
                    "this subset elaborates modules with default parameters only",
                    cls.location,
                    code="PARAM",
                )
            scope.define(param.name, self._eval(param.default, scope, ctx))

        if not ctx.is_raw:
            clock_port = ir.Port("clock", ir.INPUT, ir.ClockType())
            reset_port = ir.Port("reset", ir.INPUT, ir.UIntType(1))
            ctx.ports.extend([clock_port, reset_port])
            ctx.namer.reserve("clock")
            ctx.namer.reserve("reset")
            clock_value = v.HwValue(ir.Reference("clock"), v.ClockT(), v.BINDING_PORT_IN)
            reset_value = v.HwValue(ir.Reference("reset"), v.BoolT(), v.BINDING_PORT_IN)
            scope.define("clock", clock_value)
            scope.define("reset", reset_value)
            ctx.clock_stack.append(clock_value)
            ctx.reset_stack.append(reset_value)
        else:
            ctx.clock_stack.append(None)
            ctx.reset_stack.append(None)

        self._exec_stmts(cls.body, scope, ctx)
        return ir.Module(cls.name, ctx.ports, ctx.body)

    def _bind_builtin_constants(self, scope: Scope) -> None:
        scope.define("DontCare", v.DONT_CARE)

    # ------------------------------------------------------------ statements

    def _exec_stmts(self, stmts: list[ast.Stmt], scope: Scope, ctx: ModuleContext) -> object:
        result: object = None
        for stmt in stmts:
            result = self._exec_stmt(stmt, scope, ctx)
        return result

    def _exec_stmt(self, stmt: ast.Stmt, scope: Scope, ctx: ModuleContext) -> object:
        if isinstance(stmt, ast.ValDef):
            value = self._eval(stmt.value, scope, ctx, name_hint=stmt.name)
            value = self._maybe_name_node(value, stmt.name, scope, ctx, stmt.location)
            scope.define(stmt.name, value, mutable=stmt.mutable)
            return None
        if isinstance(stmt, ast.Connect):
            self._exec_connect(stmt, scope, ctx, bulk=False)
            return None
        if isinstance(stmt, ast.BulkConnect):
            self._exec_connect(stmt, scope, ctx, bulk=True)
            return None
        if isinstance(stmt, ast.Assign):
            self._exec_assign(stmt, scope, ctx)
            return None
        if isinstance(stmt, ast.WhenStmt):
            self._exec_when(stmt, scope, ctx)
            return None
        if isinstance(stmt, ast.SwitchStmt):
            self._exec_switch(stmt, scope, ctx)
            return None
        if isinstance(stmt, ast.ForStmt):
            self._exec_for(stmt, scope, ctx)
            return None
        if isinstance(stmt, ast.IfStmt):
            self._exec_if(stmt, scope, ctx)
            return None
        if isinstance(stmt, ast.WithClockStmt):
            self._exec_with_clock(stmt.clock, stmt.reset, stmt.body, scope, ctx)
            return None
        if isinstance(stmt, ast.ExprStmt):
            return self._eval(stmt.expr, scope, ctx)
        raise ChiselError.at(
            f"unsupported statement {type(stmt).__name__}", stmt.location, code="PARSE"
        )

    def _maybe_name_node(
        self,
        value: object,
        name: str,
        scope: Scope,
        ctx: ModuleContext,
        location: SourceLocation,
    ) -> object:
        """Bind an anonymous combinational expression to a named node."""
        if isinstance(value, v.HwValue) and value.binding == v.BINDING_OP:
            node_name = ctx.namer.reserve(name)
            ctx.emit(ir.DefNode(node_name, value.expr, location))
            return v.HwValue(ir.Reference(node_name), value.tpe, v.BINDING_NODE)
        return value

    # -- connections ---------------------------------------------------------

    def _exec_connect(
        self, stmt: ast.Connect | ast.BulkConnect, scope: Scope, ctx: ModuleContext, bulk: bool
    ) -> None:
        target = self._eval(stmt.target, scope, ctx)
        value = self._eval(stmt.value, scope, ctx)
        self._connect_values(target, value, stmt.location, ctx, bulk=bulk)

    def _connect_values(
        self,
        target: object,
        value: object,
        location: SourceLocation,
        ctx: ModuleContext,
        bulk: bool = False,
    ) -> None:
        if isinstance(target, (v.HwType, v.Directed)):
            raise ChiselError.at(
                f"{v.describe_value(target)} must be hardware, not a bare Chisel type. "
                "Perhaps you forgot to wrap it in Wire(_) or IO(_)?",
                location,
                code="B2",
            )
        if isinstance(value, (v.HwType, v.Directed)):
            raise ChiselError.at(
                f"{v.describe_value(value)} must be hardware, not a bare Chisel type. "
                "Perhaps you forgot to wrap it in Wire(_) or IO(_)?",
                location,
                code="B2",
            )
        if isinstance(value, v.DontCareValue):
            if isinstance(target, v.HwValue):
                ctx.emit(ir.Invalidate(target.expr, location))
                return
            if isinstance(target, v.BundleView):
                for member in target.members.values():
                    self._connect_values(member, v.DONT_CARE, location, ctx, bulk)
                return
        if isinstance(target, v.BundleView) or isinstance(value, v.BundleView):
            self._connect_bundle_views(target, value, location, ctx)
            return
        if not isinstance(target, v.HwValue):
            raise ChiselError.at(
                f"left-hand side of := must be hardware, found {v.describe_value(target)}",
                location,
                code="B2",
            )
        if not isinstance(value, v.HwValue):
            raise ChiselError.at(
                f"type mismatch;\n found   : {v.describe_value(value)}\n "
                f"required: chisel3.Data (hardware)",
                location,
                code="B5",
            )
        if target.binding == v.BINDING_PORT_IN:
            raise ChiselError.at(
                f"cannot connect to input port {target.expr}: "
                "input ports are driven by the parent, not the module body",
                location,
                code="CONNECT",
            )
        if target.binding in (v.BINDING_LITERAL, v.BINDING_OP, v.BINDING_NODE):
            raise ChiselError.at(
                f"cannot reassign to a read-only hardware value ({target.expr}); "
                "individual bits of a UInt are read-only — use a Vec of Bool and "
                "asUInt, or connect the whole signal",
                location,
                code="READONLY",
            )
        self._check_connect_types(target, value, location)
        ctx.emit(ir.Connect(target.expr, value.expr, location))

    def _connect_bundle_views(
        self, target: object, value: object, location: SourceLocation, ctx: ModuleContext
    ) -> None:
        if not isinstance(target, v.BundleView) or not isinstance(value, v.BundleView):
            raise ChiselError.at(
                "bundle connection requires bundles on both sides; found "
                f"{v.describe_value(target)} := {v.describe_value(value)}",
                location,
                code="B4",
            )
        missing = [name for name in target.members if name not in value.members]
        if missing:
            raise ChiselError.at(
                "Connection between sink (Bundle) and source (Bundle) failed: "
                f"source Record missing field ({missing[0]}).",
                location,
                code="B4",
            )
        for name, member in target.members.items():
            self._connect_values(member, value.members[name], location, ctx)

    def _check_connect_types(
        self, target: v.HwValue, value: v.HwValue, location: SourceLocation
    ) -> None:
        t_tpe, s_tpe = target.tpe, value.tpe
        if isinstance(t_tpe, v.BundleT) or isinstance(s_tpe, v.BundleT):
            if not isinstance(t_tpe, v.BundleT) or not isinstance(s_tpe, v.BundleT):
                raise ChiselError.at(
                    f"type mismatch in connection: sink is {t_tpe.chisel_name()} but "
                    f"source is {s_tpe.chisel_name()}",
                    location,
                    code="B4",
                )
            sink_fields = {f.name for f in t_tpe.fields}
            source_fields = {f.name for f in s_tpe.fields}
            missing = sorted(sink_fields - source_fields)
            if missing:
                raise ChiselError.at(
                    f"Connection between sink ({t_tpe.type_name}) and source "
                    f"({s_tpe.type_name}) failed: source Record missing field "
                    f"({missing[0]}).",
                    location,
                    code="B4",
                )
            return
        if isinstance(t_tpe, v.VecT) != isinstance(s_tpe, v.VecT):
            raise ChiselError.at(
                f"type mismatch in connection: sink is {t_tpe.chisel_name()} but "
                f"source is {s_tpe.chisel_name()}",
                location,
                code="B5",
            )
        if isinstance(t_tpe, v.VecT) and isinstance(s_tpe, v.VecT):
            if t_tpe.size != s_tpe.size:
                raise ChiselError.at(
                    f"cannot connect Vec of size {s_tpe.size} to Vec of size {t_tpe.size}",
                    location,
                    code="B5",
                )
            return
        if isinstance(t_tpe, v.ClockT) != isinstance(s_tpe, v.ClockT):
            raise ChiselError.at(
                f"type mismatch in connection: sink is {t_tpe.chisel_name()} but "
                f"source is {s_tpe.chisel_name()}",
                location,
                code="B5",
            )
        if isinstance(t_tpe, v.SIntT) and isinstance(s_tpe, (v.UIntT, v.BoolT)):
            raise ChiselError.at(
                "type mismatch;\n found   : chisel3.UInt\n required: chisel3.SInt",
                location,
                code="B5",
            )
        if isinstance(t_tpe, (v.UIntT, v.BoolT)) and isinstance(s_tpe, v.SIntT):
            raise ChiselError.at(
                "type mismatch;\n found   : chisel3.SInt\n required: chisel3.UInt",
                location,
                code="B5",
            )

    # -- Scala assignment ------------------------------------------------------

    def _exec_assign(self, stmt: ast.Assign, scope: Scope, ctx: ModuleContext) -> None:
        if isinstance(stmt.target, ast.Ident):
            name = stmt.target.name
            if not scope.contains(name):
                raise self._not_found_error(name, scope, stmt.location)
            current = scope.lookup(name)
            if isinstance(current, (v.HwValue, v.BundleView)):
                raise ChiselError.at(
                    f"reassignment to val {name}: use ':=' to drive hardware signals, "
                    "'=' only reassigns Scala vars",
                    stmt.location,
                    code="A2",
                )
            value = self._eval(stmt.value, scope, ctx)
            if not scope.assign(name, value):
                raise ChiselError.at(
                    f"reassignment to val {name}", stmt.location, code="A2"
                )
            return
        raise ChiselError.at(
            "unsupported assignment target; use ':=' for hardware connections",
            stmt.location,
            code="PARSE",
        )

    # -- when / switch ----------------------------------------------------------

    def _exec_when(self, stmt: ast.WhenStmt, scope: Scope, ctx: ModuleContext) -> None:
        self._emit_when_branches(stmt.branches, scope, ctx, stmt.location)

    def _emit_when_branches(
        self,
        branches: list[ast.WhenBranch],
        scope: Scope,
        ctx: ModuleContext,
        location: SourceLocation,
    ) -> None:
        if not branches:
            return
        branch = branches[0]
        if branch.condition is None:
            # A bare otherwise at the head (shouldn't happen) — just execute.
            self._exec_stmts(branch.body, Scope(scope), ctx)
            return
        condition = self._eval(branch.condition, scope, ctx)
        cond_hw = self._require_bool(condition, location, context="when()")
        conditional = ir.Conditionally(cond_hw.expr, ir.Block(), ir.Block(), location)
        ctx.emit(conditional)
        ctx.block_stack.append(conditional.conseq)
        self._exec_stmts(branch.body, Scope(scope), ctx)
        ctx.block_stack.pop()
        rest = branches[1:]
        if not rest:
            return
        ctx.block_stack.append(conditional.alt)
        if rest[0].condition is None:
            self._exec_stmts(rest[0].body, Scope(scope), ctx)
        else:
            self._emit_when_branches(rest, scope, ctx, location)
        ctx.block_stack.pop()

    def _exec_switch(self, stmt: ast.SwitchStmt, scope: Scope, ctx: ModuleContext) -> None:
        subject = self._eval(stmt.subject, scope, ctx)
        if not isinstance(subject, v.HwValue):
            raise ChiselError.at(
                f"switch() requires a hardware value, found {v.describe_value(subject)}",
                stmt.location,
                code="B5",
            )
        branches: list[ast.WhenBranch] = []
        for case in stmt.cases:
            if case.keyword != "is":
                raise ChiselError.at(
                    f"not found: value {case.keyword}. Chisel's switch block only "
                    "supports is(...) clauses; there is no default case — provide a "
                    "default by initializing the signal with WireDefault before the "
                    "switch",
                    case.location or stmt.location,
                    code="A1",
                )
            if not case.patterns:
                raise ChiselError.at(
                    "is(...) requires at least one literal pattern",
                    case.location or stmt.location,
                    code="A3",
                )
            condition: ast.Expr | None = None
            for pattern in case.patterns:
                comparison = ast.BinaryOp(pattern.location, "===", stmt.subject, pattern)
                if condition is None:
                    condition = comparison
                else:
                    condition = ast.BinaryOp(pattern.location, "||", condition, comparison)
            branches.append(ast.WhenBranch(condition, case.body))
        self._emit_when_branches(branches, scope, ctx, stmt.location)

    # -- Scala control flow -------------------------------------------------------

    def _exec_for(self, stmt: ast.ForStmt, scope: Scope, ctx: ModuleContext) -> None:
        iterable = self._eval(stmt.iterable, scope, ctx)
        items: list[object]
        if isinstance(iterable, range):
            items = list(iterable)
        elif isinstance(iterable, (list, tuple)):
            items = list(iterable)
        elif isinstance(iterable, v.HwValue) and isinstance(iterable.tpe, v.VecT):
            items = [
                self._vec_element(iterable, index, stmt.location) for index in range(iterable.tpe.size)
            ]
        else:
            raise ChiselError.at(
                f"cannot iterate over {v.describe_value(iterable)} in a for loop",
                stmt.location,
                code="B5",
            )
        for item in items:
            loop_scope = Scope(scope)
            loop_scope.define(stmt.variable, item, mutable=True)
            self._exec_stmts(stmt.body, loop_scope, ctx)

    def _exec_if(self, stmt: ast.IfStmt, scope: Scope, ctx: ModuleContext) -> None:
        condition = self._eval(stmt.condition, scope, ctx)
        if isinstance(condition, v.HwValue):
            raise ChiselError.at(
                "type mismatch;\n found   : chisel3.Bool (hardware)\n required: Boolean\n"
                "Scala if() cannot branch on a hardware value — use when() or Mux()",
                stmt.location,
                code="B5",
            )
        if condition:
            self._exec_stmts(stmt.then_body, Scope(scope), ctx)
        else:
            self._exec_stmts(stmt.else_body, Scope(scope), ctx)

    def _exec_with_clock(
        self,
        clock_expr: ast.Expr | None,
        reset_expr: ast.Expr | None,
        body: list[ast.Stmt],
        scope: Scope,
        ctx: ModuleContext,
    ) -> object:
        clock_value: v.HwValue | None = None
        reset_value: v.HwValue | None = None
        if clock_expr is not None:
            clock = self._eval(clock_expr, scope, ctx)
            clock_value = self._require_clock(clock, clock_expr.location)
        if reset_expr is not None:
            reset = self._eval(reset_expr, scope, ctx)
            reset_value = self._require_bool(reset, reset_expr.location, context="withReset()")
        ctx.clock_stack.append(clock_value)
        ctx.reset_stack.append(reset_value)
        try:
            return self._exec_stmts(body, Scope(scope), ctx)
        finally:
            ctx.clock_stack.pop()
            ctx.reset_stack.pop()

    # ---------------------------------------------------------------- helpers

    def _require_bool(
        self, value: object, location: SourceLocation, context: str
    ) -> v.HwValue:
        if isinstance(value, v.HwValue):
            if isinstance(value.tpe, v.BoolT):
                return value
            if isinstance(value.tpe, v.UIntT) and value.tpe.width == 1:
                return v.HwValue(value.expr, v.BoolT(), value.binding)
            raise ChiselError.at(
                f"type mismatch;\n found   : {value.type_name()}\n required: chisel3.Bool\n"
                f"{context} requires a Bool condition",
                location,
                code="B5",
            )
        raise ChiselError.at(
            f"type mismatch;\n found   : {v.describe_value(value)}\n required: chisel3.Bool\n"
            f"{context} requires a hardware Bool condition",
            location,
            code="B5",
        )

    def _require_clock(self, value: object, location: SourceLocation) -> v.HwValue:
        if isinstance(value, v.HwValue) and isinstance(value.tpe, v.ClockT):
            return value
        if isinstance(value, (v.HwType, v.Directed)):
            raise ChiselError.at(
                f"{v.describe_value(value)}: Clock must be hardware, not a bare Chisel "
                "type. Perhaps you forgot to wrap it in Wire(_) or IO(_)?",
                location,
                code="B2",
            )
        described = (
            value.type_name() if isinstance(value, v.HwValue) else v.describe_value(value)
        )
        raise ChiselError.at(
            f"type mismatch;\n found   : {described}\n required: chisel3.Clock",
            location,
            code="B5",
        )

    def _not_found_error(
        self, name: str, scope: Scope, location: SourceLocation
    ) -> ChiselError:
        suggestion = None
        matches = difflib.get_close_matches(name, scope.all_names(), n=1)
        if matches:
            suggestion = f"Did you mean {matches[0]}?"
        message = f"not found: value {name}"
        if suggestion:
            message = f"{message}. {suggestion}"
        return ChiselError.at(message, location, code="A1")

    def _vec_element(self, vec: v.HwValue, index: int, location: SourceLocation) -> v.HwValue:
        assert isinstance(vec.tpe, v.VecT)
        if index < 0 or index >= vec.tpe.size:
            raise ChiselError.at(
                f"{index} is out of bounds (min 0, max {vec.tpe.size - 1})",
                location,
                code="B7",
            )
        return v.HwValue(ir.SubIndex(vec.expr, index), vec.tpe.element, vec.binding)

    # ------------------------------------------------------------- expressions

    def _eval(
        self,
        expr: ast.Expr,
        scope: Scope,
        ctx: ModuleContext,
        name_hint: str | None = None,
    ) -> object:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.StringLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.Ident):
            if not scope.contains(expr.name):
                raise self._not_found_error(expr.name, scope, expr.location)
            return scope.lookup(expr.name)
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr, scope, ctx)
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unary(expr, scope, ctx)
        if isinstance(expr, ast.FieldSelect):
            target = self._eval(expr.target, scope, ctx)
            return self._member(target, expr.name, [], [], [], expr.location, scope, ctx, name_hint)
        if isinstance(expr, ast.MethodCall):
            return self._eval_call(expr, scope, ctx, name_hint)
        if isinstance(expr, ast.Apply):
            target = self._eval(expr.target, scope, ctx)
            args = [self._eval(a, scope, ctx) for a in expr.args]
            return self._apply(target, args, expr.location)
        if isinstance(expr, ast.BundleLiteral):
            return self._eval_bundle_literal(expr, scope, ctx)
        if isinstance(expr, ast.NewInstance):
            return self._eval_new_instance(expr, scope, ctx)
        if isinstance(expr, ast.IfExpr):
            condition = self._eval(expr.condition, scope, ctx)
            if isinstance(condition, v.HwValue):
                raise ChiselError.at(
                    "Scala if-expression cannot branch on a hardware value — use Mux()",
                    expr.location,
                    code="B5",
                )
            if condition:
                return self._eval(expr.then_value, scope, ctx, name_hint)
            if expr.else_value is None:
                return None
            return self._eval(expr.else_value, scope, ctx, name_hint)
        if isinstance(expr, ast.WithClockExpr):
            return self._exec_with_clock(expr.clock, expr.reset, expr.body, scope, ctx)
        if isinstance(expr, ast.Lambda):
            return ("lambda", expr, scope)
        if isinstance(expr, ast.Placeholder):
            raise ChiselError.at(
                "unexpected placeholder '_' outside a lambda argument",
                expr.location,
                code="PARSE",
            )
        raise ChiselError.at(
            f"unsupported expression {type(expr).__name__}", expr.location, code="PARSE"
        )

    # -- calls -------------------------------------------------------------------

    def _eval_call(
        self,
        expr: ast.MethodCall,
        scope: Scope,
        ctx: ModuleContext,
        name_hint: str | None = None,
    ) -> object:
        args_ast = expr.args
        if expr.target is None:
            # Bare call: a builtin constructor/function, or a call of a local value.
            if scope.contains(expr.name) and not self._is_builtin(expr.name):
                target_value = scope.lookup(expr.name)
                args = [self._eval(a, scope, ctx) for a in args_ast]
                return self._apply(target_value, args, expr.location)
            return self._call_builtin(expr, scope, ctx, name_hint)
        from repro.chisel.intrinsics import COMPANION_OBJECTS

        if (
            isinstance(expr.target, ast.Ident)
            and expr.target.name in COMPANION_OBJECTS
            and not scope.contains(expr.target.name)
        ):
            target_value: object = ("companion", expr.target.name)
        else:
            target_value = self._eval(expr.target, scope, ctx)
        args = [self._eval(a, scope, ctx) for a in args_ast]
        extra = [[self._eval(a, scope, ctx) for a in arg_list] for arg_list in expr.extra_arg_lists]
        return self._member(
            target_value, expr.name, args, expr.type_args, extra, expr.location, scope, ctx, name_hint
        )

    # The builtin dispatch tables live in intrinsics.py to keep this file focused
    # on evaluation flow; they are bound at import time below.

    def _is_builtin(self, name: str) -> bool:
        from repro.chisel.intrinsics import BUILTIN_NAMES

        return name in BUILTIN_NAMES

    def _call_builtin(
        self,
        expr: ast.MethodCall,
        scope: Scope,
        ctx: ModuleContext,
        name_hint: str | None,
    ) -> object:
        from repro.chisel.intrinsics import call_builtin

        return call_builtin(self, expr, scope, ctx, name_hint)

    def _member(
        self,
        target: object,
        name: str,
        args: list[object],
        type_args: list[str],
        extra_arg_lists: list[list[object]],
        location: SourceLocation,
        scope: Scope,
        ctx: ModuleContext,
        name_hint: str | None = None,
    ) -> object:
        from repro.chisel.intrinsics import call_member

        return call_member(
            self, target, name, args, type_args, extra_arg_lists, location, scope, ctx, name_hint
        )

    def _apply(self, target: object, args: list[object], location: SourceLocation) -> object:
        from repro.chisel.intrinsics import apply_value

        return apply_value(self, target, args, location)

    def _eval_binary(self, expr: ast.BinaryOp, scope: Scope, ctx: ModuleContext) -> object:
        from repro.chisel.intrinsics import binary_op

        left = self._eval(expr.left, scope, ctx)
        right = self._eval(expr.right, scope, ctx)
        return binary_op(self, expr.op, left, right, expr.location)

    def _eval_unary(self, expr: ast.UnaryOp, scope: Scope, ctx: ModuleContext) -> object:
        from repro.chisel.intrinsics import unary_op

        operand = self._eval(expr.operand, scope, ctx)
        return unary_op(self, expr.op, operand, expr.location)

    # -- bundles / classes ----------------------------------------------------------

    def _eval_bundle_literal(
        self, expr: ast.BundleLiteral, scope: Scope, ctx: ModuleContext
    ) -> v.BundleT:
        fields: list[v.BundleFieldT] = []
        for member in expr.members:
            value = self._eval(member.value, scope, ctx)
            direction: str | None = None
            tpe: v.HwType
            if isinstance(value, v.Directed):
                direction = value.direction
                tpe = value.tpe
            elif isinstance(value, v.HwType):
                tpe = value
            else:
                raise ChiselError.at(
                    f"Bundle field {member.name!r} must be a Chisel type, found "
                    f"{v.describe_value(value)}",
                    member.location,
                    code="B2",
                )
            fields.append(v.BundleFieldT(member.name, tpe, direction))
        return v.BundleT(tuple(fields))

    def _eval_new_instance(
        self, expr: ast.NewInstance, scope: Scope, ctx: ModuleContext
    ) -> object:
        cls = self.program.find_class(expr.class_name)
        if cls is None:
            raise self._not_found_error(expr.class_name, scope, expr.location)
        if "Bundle" in cls.parents:
            return self._elaborate_bundle_class(cls, expr, scope, ctx)
        if cls.is_module:
            raise ChiselError.at(
                "submodule instantiation (Module(new ...)) is not supported by this "
                "Chisel subset; flatten the design into a single module",
                expr.location,
                code="UNSUPPORTED",
            )
        raise ChiselError.at(
            f"cannot instantiate class {expr.class_name!r}: only Bundle subclasses are "
            "supported with new",
            expr.location,
            code="UNSUPPORTED",
        )

    def _elaborate_bundle_class(
        self,
        cls: ast.ClassDef,
        expr: ast.NewInstance,
        scope: Scope,
        ctx: ModuleContext,
    ) -> v.BundleT:
        bundle_scope = Scope(scope)
        for index, param in enumerate(cls.params):
            if index < len(expr.args):
                bundle_scope.define(param.name, self._eval(expr.args[index], scope, ctx))
            elif param.default is not None:
                bundle_scope.define(param.name, self._eval(param.default, scope, ctx))
            else:
                raise ChiselError.at(
                    f"missing argument for parameter {param.name} of {cls.name}",
                    expr.location,
                    code="A3",
                )
        fields: list[v.BundleFieldT] = []
        for stmt in cls.body:
            if not isinstance(stmt, ast.ValDef):
                continue
            value = self._eval(stmt.value, bundle_scope, ctx)
            direction: str | None = None
            if isinstance(value, v.Directed):
                direction = value.direction
                tpe = value.tpe
            elif isinstance(value, v.HwType):
                tpe = value
            else:
                raise ChiselError.at(
                    f"Bundle field {stmt.name!r} must be a Chisel type, found "
                    f"{v.describe_value(value)}",
                    stmt.location,
                    code="B2",
                )
            fields.append(v.BundleFieldT(stmt.name, tpe, direction))
        return v.BundleT(tuple(fields), type_name=cls.name)


def resolve_top(program: ast.Program, top: str | None) -> ast.ClassDef:
    """The class that will be elaborated (explicit ``top`` or the last Module)."""
    module_classes = program.module_classes()
    if not module_classes:
        raise ChiselError.at(
            "no class extending Module was found in the source",
            program.location,
            code="NO_MODULE",
        )
    if top is not None:
        cls = program.find_class(top)
        if cls is None or not cls.is_module:
            raise ChiselError.at(
                f"top module {top!r} was not found in the source "
                f"(available: {', '.join(c.name for c in module_classes)})",
                program.location,
                code="NO_MODULE",
            )
        return cls
    return module_classes[-1]


# ---------------------------------------------------------------------------
# Elaboration cache (stage 2 of the incremental compile pipeline)
# ---------------------------------------------------------------------------
#
# Elaboration is memoized *per module class*, keyed on a structural hash of
# the class body (source positions excluded), so a revision that edits one
# module re-elaborates only that module: every other class in the file — and
# candidates that differ only in comments, whitespace or code outside the
# class — hit the cache.  Because ``new Name(...)`` can reach Bundle classes
# defined elsewhere in the program, the key also covers the name/parents
# signature of every sibling class plus the full structure of non-module
# siblings (module bodies are never entered, so their edits cannot change the
# result).

_elaborate_cache: LruCache[object] = LruCache(256, name="chisel_elaborate")


def _class_fingerprint(cls: ast.ClassDef) -> str:
    fingerprint = cls.__dict__.get("_structural_fp")
    if fingerprint is None:
        fingerprint = structural_fingerprint(cls)
        cls._structural_fp = fingerprint  # AST is immutable by convention
    return fingerprint


def _elaboration_key(program: ast.Program, cls: ast.ClassDef) -> str:
    parts = [_class_fingerprint(cls)]
    for sibling in program.classes:
        if sibling is cls:
            continue
        signature = f"{sibling.name}({','.join(sibling.parents)})"
        if not sibling.is_module:
            signature += ":" + _class_fingerprint(sibling)
        parts.append(signature)
    return text_key(*parts)


def elaborate(program: ast.Program, top: str | None = None) -> ir.Circuit:
    """Elaborate a parsed Chisel program into a FIRRTL circuit (stage-cached).

    Successful elaborations and :class:`ChiselError` failures are both
    memoized; the cached :class:`~repro.firrtl.ir.Module` is shared between
    circuits (FIRRTL passes never mutate their input).  Top-class resolution
    stays uncached — its diagnostics depend on the whole program.
    """
    cls = resolve_top(program, top)
    try:
        key = _elaboration_key(program, cls)
    except RecursionError:
        return Elaborator(program, top).elaborate()
    module = get_or_compute(
        _elaborate_cache,
        key,
        lambda: Elaborator(program, top)._elaborate_module(cls),
        cache_exceptions=(ChiselError,),
    )
    return ir.Circuit(module.name, [module])


def clear_elaboration_cache() -> None:
    _elaborate_cache.clear()
