"""Signal-name allocation during elaboration.

Chisel names hardware after the ``val`` that binds it; temporaries get
``_T_<n>`` names.  The :class:`Namer` reproduces that behaviour and guarantees
uniqueness within a module.
"""

from __future__ import annotations


class Namer:
    """Allocate unique signal names within one module."""

    def __init__(self) -> None:
        self._used: set[str] = set()
        self._temp_counter = 0

    def reserve(self, name: str) -> str:
        """Reserve ``name``; if already taken, append a numeric suffix."""
        candidate = name
        suffix = 1
        while candidate in self._used:
            candidate = f"{name}_{suffix}"
            suffix += 1
        self._used.add(candidate)
        return candidate

    def temp(self, prefix: str = "_T") -> str:
        """Allocate a fresh temporary name."""
        self._temp_counter += 1
        return self.reserve(f"{prefix}_{self._temp_counter}")

    def is_used(self, name: str) -> bool:
        return name in self._used
