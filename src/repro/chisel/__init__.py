"""Chisel-subset frontend: lexer, parser, AST and elaborator.

The frontend accepts a constrained but realistic subset of Chisel 3 (Scala
embedded), mirroring what the paper's LLMs emit for module-level problems:
``Module``/``RawModule`` classes, ``IO(new Bundle {...})`` port declarations,
``UInt``/``SInt``/``Bool``/``Vec`` types, ``Wire``/``WireDefault``/``Reg``/
``RegInit``/``RegNext`` state elements, ``when``/``elsewhen``/``otherwise``,
``switch``/``is``, Scala ``val``/``var``/``for``/``if`` (resolved at
elaboration time), ``Mux``, ``Cat``, ``Fill``, ``VecInit`` and the usual
operator set.  Elaboration executes the Scala-level program and produces a
FIRRTL circuit (:mod:`repro.firrtl`), raising Chisel-style diagnostics for the
error classes catalogued in Table II of the paper.
"""

from repro.chisel.diagnostics import ChiselError, Diagnostic, Severity
from repro.chisel.elaborator import elaborate
from repro.chisel.lexer import Lexer, Token, TokenKind
from repro.chisel.parser import Parser, parse_source

__all__ = [
    "ChiselError",
    "Diagnostic",
    "Severity",
    "Lexer",
    "Token",
    "TokenKind",
    "Parser",
    "parse_source",
    "elaborate",
]
