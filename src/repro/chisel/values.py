"""Elaboration-time value model for the Chisel subset.

During elaboration every Scala expression evaluates to one of:

* a plain Python value (``int``, ``bool``, ``str``, ``list``, ``range``) for
  Scala-level computation;
* a :class:`Width` (the result of ``8.W``);
* a :class:`HwType` describing a Chisel data type that has not yet been bound
  to hardware (``UInt(8.W)``, ``Vec(4, Bool())``, a ``Bundle`` literal);
* a :class:`Directed` wrapper (the result of ``Input(...)``/``Output(...)``);
* a :class:`HwValue` — actual hardware: a FIRRTL expression plus its Chisel
  type and binding kind; or
* a :class:`BundleView` mapping field names to hardware values (the result of
  ``IO(new Bundle {...})`` after the elaborator flattens the port bundle).

Keeping "type" and "hardware" as distinct runtime categories is what lets the
elaborator reproduce the paper's Table II B2 error ("must be hardware, not a
bare Chisel type") faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.firrtl import ir

# ---------------------------------------------------------------------------
# Chisel types (pre-hardware)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Width:
    """The value of ``n.W``."""

    value: int


class HwType:
    """Base class of Chisel data types at elaboration time."""

    def chisel_name(self) -> str:
        return type(self).__name__

    def to_firrtl(self) -> ir.Type:
        raise NotImplementedError


@dataclass(frozen=True)
class UIntT(HwType):
    width: int | None = None

    def chisel_name(self) -> str:
        return "chisel3.UInt"

    def to_firrtl(self) -> ir.Type:
        return ir.UIntType(self.width)


@dataclass(frozen=True)
class SIntT(HwType):
    width: int | None = None

    def chisel_name(self) -> str:
        return "chisel3.SInt"

    def to_firrtl(self) -> ir.Type:
        return ir.SIntType(self.width)


@dataclass(frozen=True)
class BoolT(HwType):
    def chisel_name(self) -> str:
        return "chisel3.Bool"

    def to_firrtl(self) -> ir.Type:
        return ir.UIntType(1)


@dataclass(frozen=True)
class ClockT(HwType):
    def chisel_name(self) -> str:
        return "chisel3.Clock"

    def to_firrtl(self) -> ir.Type:
        return ir.ClockType()


@dataclass(frozen=True)
class ResetT(HwType):
    """Abstract ``Reset()`` — triggers the InferResets diagnostic when used as a port."""

    def chisel_name(self) -> str:
        return "chisel3.Reset"

    def to_firrtl(self) -> ir.Type:
        return ir.ResetType()


@dataclass(frozen=True)
class AsyncResetT(HwType):
    def chisel_name(self) -> str:
        return "chisel3.AsyncReset"

    def to_firrtl(self) -> ir.Type:
        return ir.AsyncResetType()


@dataclass(frozen=True)
class VecT(HwType):
    size: int
    element: HwType

    def chisel_name(self) -> str:
        return f"chisel3.Vec[{self.element.chisel_name()}]"

    def to_firrtl(self) -> ir.Type:
        return ir.VectorType(self.element.to_firrtl(), self.size)


@dataclass(frozen=True)
class BundleFieldT:
    name: str
    tpe: HwType
    direction: str | None = None  # "input" / "output" / None


@dataclass(frozen=True)
class BundleT(HwType):
    fields: tuple[BundleFieldT, ...] = ()
    type_name: str = "Bundle"

    def chisel_name(self) -> str:
        return f"chisel3.{self.type_name}"

    def field_named(self, name: str) -> BundleFieldT | None:
        for f in self.fields:
            if f.name == name:
                return f
        return None

    def to_firrtl(self) -> ir.Type:
        return ir.BundleType(
            tuple(
                ir.BundleField(f.name, f.tpe.to_firrtl(), f.direction == "input")
                for f in self.fields
            )
        )


@dataclass(frozen=True)
class Directed:
    """A type wrapped by ``Input``/``Output``/``Flipped``."""

    direction: str  # "input" or "output"
    tpe: HwType


# ---------------------------------------------------------------------------
# Hardware values
# ---------------------------------------------------------------------------

# Binding kinds: how a hardware value came into existence.  Connection rules
# and naming differ per kind.
BINDING_PORT_IN = "port_in"
BINDING_PORT_OUT = "port_out"
BINDING_WIRE = "wire"
BINDING_REG = "reg"
BINDING_NODE = "node"
BINDING_LITERAL = "literal"
BINDING_OP = "op"


@dataclass
class HwValue:
    """A piece of hardware: a FIRRTL expression, its Chisel type and binding."""

    expr: ir.Expr
    tpe: HwType
    binding: str = BINDING_OP

    @property
    def is_sink(self) -> bool:
        return self.binding in (BINDING_PORT_OUT, BINDING_WIRE, BINDING_REG)

    def type_name(self) -> str:
        return self.tpe.chisel_name()


@dataclass
class MemValue:
    """An elaborated ``Mem``/``SyncReadMem``: addressable storage, not Data.

    Memories are not hardware *values* — they cannot be connected, compared or
    used in expressions directly.  Access goes through ``mem(addr)`` (for
    combinational-read ``Mem``), ``mem.read(addr[, enable])`` and
    ``mem.write(addr, data)``, all of which produce ordinary :class:`HwValue`
    results or ``Connect`` statements against ``SubAccess(Reference(name), _)``.
    """

    name: str
    element: HwType
    depth: int
    sync_read: bool

    def kind_name(self) -> str:
        return "SyncReadMem" if self.sync_read else "Mem"

    def chisel_name(self) -> str:
        return f"chisel3.{self.kind_name()}[{self.element.chisel_name()}]"


@dataclass
class BundleView:
    """The flattened view of an IO bundle: field name → member value.

    Members are :class:`HwValue`, nested :class:`BundleView`, or lists (for
    ``Vec`` fields exposed as Scala sequences is not supported — Vec fields
    stay as single :class:`HwValue` of :class:`VecT` type).
    """

    members: dict[str, object] = field(default_factory=dict)

    def member(self, name: str) -> object | None:
        return self.members.get(name)


@dataclass(frozen=True)
class DontCareValue:
    """The ``DontCare`` marker; connecting it invalidates the sink."""


DONT_CARE = DontCareValue()


def is_hardware(value: object) -> bool:
    return isinstance(value, (HwValue, BundleView))


def describe_value(value: object) -> str:
    """A short human-readable description used in diagnostics."""
    if isinstance(value, HwValue):
        return value.type_name()
    if isinstance(value, BundleView):
        return "chisel3.Bundle"
    if isinstance(value, MemValue):
        return value.chisel_name()
    if isinstance(value, HwType):
        return f"bare Chisel type {value.chisel_name()}"
    if isinstance(value, Directed):
        return f"{value.direction} of bare Chisel type {value.tpe.chisel_name()}"
    if isinstance(value, Width):
        return "chisel3.internal.firrtl.Width"
    if isinstance(value, bool):
        return "Boolean"
    if isinstance(value, int):
        return "Int"
    if isinstance(value, str):
        return "String"
    if isinstance(value, (list, tuple)):
        return "Seq"
    if isinstance(value, range):
        return "Range"
    return type(value).__name__
