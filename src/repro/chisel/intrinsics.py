"""Built-in Chisel constructors, methods and operators used during elaboration.

This module is the "standard library" the elaborator dispatches into:
hardware constructors (``Wire``, ``Reg``, ``IO``, ``VecInit`` ...), methods on
hardware values (``.asUInt``, ``.andR``, Vec ``map``/``reduce`` ...), Scala
collection helpers (``Seq``, ranges) and the operator table.  All Table II
diagnostics that originate in "Scala compilation" (A1-A3, B2, B5, B6, B7) are
raised from here with the matching error class code.
"""

from __future__ import annotations

import math

from repro.chisel import ast
from repro.chisel import values as v
from repro.chisel.diagnostics import ChiselError, SourceLocation
from repro.firrtl import ir
from repro.hdl.bits import min_width_for
from repro.hdl.literals import LiteralError, parse_literal

BUILTIN_NAMES = {
    "UInt",
    "SInt",
    "Bool",
    "Clock",
    "Reset",
    "AsyncReset",
    "Vec",
    "Input",
    "Output",
    "Flipped",
    "IO",
    "Wire",
    "WireDefault",
    "WireInit",
    "Reg",
    "RegInit",
    "RegNext",
    "RegEnable",
    "Mux",
    "Cat",
    "Fill",
    "VecInit",
    "PopCount",
    "Reverse",
    "log2Ceil",
    "log2Up",
    "log2Floor",
    "isPow2",
    "printf",
    "assert",
    "require",
    "stop",
    "Module",
    "Mem",
    "SyncReadMem",
    "Seq",
    "List",
    "Range",
    "MuxCase",
    "MuxLookup",
    "Counter",
    "Enum",
}

COMPANION_OBJECTS = {"Seq", "List", "Vec", "VecInit", "Range", "math", "Array"}


# ---------------------------------------------------------------------------
# Small helpers
# ---------------------------------------------------------------------------


def _uint_lit(value: int, width: int | None) -> v.HwValue:
    return v.HwValue(ir.UIntLiteral(value, width), v.UIntT(width), v.BINDING_LITERAL)


def _sint_lit(value: int, width: int | None) -> v.HwValue:
    return v.HwValue(ir.SIntLiteral(value, width), v.SIntT(width), v.BINDING_LITERAL)


def _bool_lit(flag: bool) -> v.HwValue:
    return v.HwValue(ir.UIntLiteral(1 if flag else 0, 1), v.BoolT(), v.BINDING_LITERAL)


def _type_width(tpe: v.HwType) -> int | None:
    if isinstance(tpe, (v.UIntT, v.SIntT)):
        return tpe.width
    if isinstance(tpe, (v.BoolT, v.ClockT, v.ResetT, v.AsyncResetT)):
        return 1
    if isinstance(tpe, v.VecT):
        elem = _type_width(tpe.element)
        return None if elem is None else elem * tpe.size
    if isinstance(tpe, v.BundleT):
        total = 0
        for field in tpe.fields:
            w = _type_width(field.tpe)
            if w is None:
                return None
            total += w
        return total
    return None


def _require_hw(value: object, location: SourceLocation, context: str) -> v.HwValue:
    if isinstance(value, v.HwValue):
        return value
    if isinstance(value, (v.HwType, v.Directed)):
        raise ChiselError.at(
            f"{v.describe_value(value)} must be hardware, not a bare Chisel type. "
            "Perhaps you forgot to wrap it in Wire(_) or IO(_)?",
            location,
            code="B2",
        )
    raise ChiselError.at(
        f"type mismatch;\n found   : {v.describe_value(value)}\n required: chisel3.Data\n"
        f"{context} requires a hardware value",
        location,
        code="B5",
    )


def _require_type(value: object, location: SourceLocation, context: str) -> v.HwType:
    if isinstance(value, v.HwType):
        return value
    if isinstance(value, v.Directed):
        return value.tpe
    if isinstance(value, v.HwValue):
        raise ChiselError.at(
            f"{context} expects a Chisel type (e.g. UInt(8.W)), but a hardware value of "
            f"type {value.type_name()} was provided",
            location,
            code="B2",
        )
    raise ChiselError.at(
        f"{context} expects a Chisel type, found {v.describe_value(value)}",
        location,
        code="B5",
    )


def _require_int(value: object, location: SourceLocation, context: str) -> int:
    if isinstance(value, bool):
        raise ChiselError.at(
            f"{context} expects an Int, found Boolean", location, code="B5"
        )
    if isinstance(value, int):
        return value
    if isinstance(value, v.HwValue):
        raise ChiselError.at(
            "overloaded method apply with alternatives:\n"
            "  (x: BigInt, y: BigInt)chisel3.UInt <and>\n"
            "  (x: Int, y: Int)chisel3.UInt\n"
            f" cannot be applied to ({value.type_name()})\n"
            f"{context} requires a Scala Int (compile-time constant)",
            location,
            code="A3",
        )
    raise ChiselError.at(
        f"{context} expects an Int, found {v.describe_value(value)}", location, code="B5"
    )


def _merge_types(a: v.HwType, b: v.HwType, location: SourceLocation) -> v.HwType:
    if isinstance(a, v.BoolT) and isinstance(b, v.BoolT):
        return v.BoolT()
    if isinstance(a, v.VecT) and isinstance(b, v.VecT):
        if a.size != b.size:
            raise ChiselError.at(
                f"cannot merge Vec types of different sizes ({a.size} vs {b.size})",
                location,
                code="B5",
            )
        return v.VecT(a.size, _merge_types(a.element, b.element, location))
    if isinstance(a, v.SIntT) and isinstance(b, v.SIntT):
        wa, wb = a.width, b.width
        width = None if wa is None or wb is None else max(wa, wb)
        return v.SIntT(width)
    if isinstance(a, v.BundleT):
        return a
    wa, wb = _type_width(a), _type_width(b)
    width = None if wa is None or wb is None else max(wa, wb)
    return v.UIntT(width)


def _call_lambda(elab, lam: object, args: list[object], ctx, location: SourceLocation) -> object:
    from repro.chisel.elaborator import Scope

    if not (isinstance(lam, tuple) and len(lam) == 3 and lam[0] == "lambda"):
        raise ChiselError.at(
            "expected a function argument (e.g. _ + _ or x => ...)", location, code="A3"
        )
    _, expr, closure = lam
    scope = Scope(closure)
    if len(args) != len(expr.params):
        raise ChiselError.at(
            f"wrong number of arguments for function: expected {len(expr.params)}, "
            f"found {len(args)}",
            location,
            code="A3",
        )
    for param, arg in zip(expr.params, args):
        scope.define(param, arg)
    return elab._eval(expr.body, scope, ctx)


# ---------------------------------------------------------------------------
# Builtin constructor / function calls (bare names)
# ---------------------------------------------------------------------------


def call_builtin(elab, expr: ast.MethodCall, scope, ctx, name_hint: str | None) -> object:
    name = expr.name
    location = expr.location
    args = [elab._eval(a, scope, ctx) for a in expr.args]
    extra = [[elab._eval(a, scope, ctx) for a in arg_list] for arg_list in expr.extra_arg_lists]

    if name == "UInt":
        return _make_int_type(args, location, signed=False)
    if name == "SInt":
        return _make_int_type(args, location, signed=True)
    if name == "Bool":
        return v.BoolT()
    if name == "Clock":
        return v.ClockT()
    if name == "Reset":
        return v.ResetT()
    if name == "AsyncReset":
        return v.AsyncResetT()
    if name == "Vec":
        if len(args) != 2:
            raise ChiselError.at(
                f"Vec(n, gen) expects 2 arguments, found {len(args)}", location, code="A3"
            )
        size = _require_int(args[0], location, "Vec size")
        element = _require_type(args[1], location, "Vec element")
        return v.VecT(size, element)
    if name in ("Input", "Output"):
        tpe = _require_type(args[0], location, name) if args else None
        if tpe is None:
            raise ChiselError.at(f"{name}() requires a type argument", location, code="A3")
        return v.Directed(name.lower(), tpe)
    if name == "Flipped":
        inner = args[0]
        if isinstance(inner, v.Directed):
            flipped = "input" if inner.direction == "output" else "output"
            return v.Directed(flipped, inner.tpe)
        tpe = _require_type(inner, location, "Flipped")
        if isinstance(tpe, v.BundleT):
            fields = tuple(
                v.BundleFieldT(
                    f.name,
                    f.tpe,
                    {"input": "output", "output": "input", None: "input"}[f.direction],
                )
                for f in tpe.fields
            )
            return v.BundleT(fields, tpe.type_name)
        return v.Directed("input", tpe)
    if name == "IO":
        return _make_io(elab, args, location, ctx, name_hint)
    if name == "Wire":
        return _make_wire(args, location, ctx, name_hint, default=None)
    if name in ("WireDefault", "WireInit"):
        return _make_wire_default(elab, args, location, ctx, name_hint)
    if name == "Reg":
        return _make_reg(args, location, ctx, name_hint)
    if name == "RegInit":
        return _make_reg_init(args, location, ctx, name_hint)
    if name == "RegNext":
        return _make_reg_next(args, location, ctx, name_hint)
    if name == "RegEnable":
        return _make_reg_enable(args, location, ctx, name_hint)
    if name == "Mux":
        return _make_mux(elab, args, location)
    if name == "Cat":
        return _make_cat(args, location)
    if name == "Fill":
        return _make_fill(args, location)
    if name == "VecInit":
        return _make_vecinit(args, location, ctx, name_hint)
    if name == "PopCount":
        operand = _require_hw(args[0], location, "PopCount")
        width = _type_width(operand.tpe)
        result_width = None if width is None else max(1, min_width_for(width))
        return v.HwValue(
            ir.DoPrim("popcount", (operand.expr,)), v.UIntT(result_width), v.BINDING_OP
        )
    if name == "Reverse":
        operand = _require_hw(args[0], location, "Reverse")
        return v.HwValue(
            ir.DoPrim("reverse", (operand.expr,)), v.UIntT(_type_width(operand.tpe)), v.BINDING_OP
        )
    if name == "log2Ceil":
        value = _require_int(args[0], location, "log2Ceil")
        if value <= 0:
            raise ChiselError.at("log2Ceil requires a positive argument", location, code="A3")
        return max(0, (value - 1).bit_length())
    if name == "log2Up":
        value = _require_int(args[0], location, "log2Up")
        if value <= 0:
            raise ChiselError.at("log2Up requires a positive argument", location, code="A3")
        return max(1, (value - 1).bit_length()) if value > 1 else 1
    if name == "log2Floor":
        value = _require_int(args[0], location, "log2Floor")
        if value <= 0:
            raise ChiselError.at("log2Floor requires a positive argument", location, code="A3")
        return value.bit_length() - 1
    if name == "isPow2":
        value = _require_int(args[0], location, "isPow2")
        return value > 0 and (value & (value - 1)) == 0
    if name in ("printf", "assert", "require", "stop"):
        return None
    if name == "Module":
        raise ChiselError.at(
            "submodule instantiation (Module(new ...)) is not supported by this Chisel "
            "subset; flatten the design into a single module",
            location,
            code="UNSUPPORTED",
        )
    if name in ("Mem", "SyncReadMem"):
        return _make_mem(args, location, ctx, name_hint, sync_read=(name == "SyncReadMem"))
    if name in ("Queue", "Counter", "Enum", "MuxCase", "MuxLookup"):
        # Each rejection names the nearest supported construct so generated
        # repair suggestions stay actionable.
        hints = {
            "Queue": "build the FIFO explicitly from a Mem (or Reg-based shift "
                     "register) with read/write pointer registers",
            "Counter": "use a RegInit(0.U(w.W)) counter incremented with + 1.U",
            "Enum": "use plain UInt literal states (val sIdle = 0.U(2.W); ...)",
            "MuxCase": "use nested Mux(cond, value, default) expressions",
            "MuxLookup": "use nested Mux(sel === key.U, value, default) expressions",
        }
        raise ChiselError.at(
            f"{name} is not supported by this Chisel subset; {hints[name]}",
            location,
            code="UNSUPPORTED",
        )
    if name in ("Seq", "List", "Array"):
        if extra:
            raise ChiselError.at(
                f"{name}(...) does not take a second argument list", location, code="A3"
            )
        return list(args)
    if name == "Range":
        if len(args) == 2:
            return range(_require_int(args[0], location, "Range"), _require_int(args[1], location, "Range"))
        raise ChiselError.at("Range(start, end) expects 2 arguments", location, code="A3")

    raise elab._not_found_error(name, scope, location)


def _make_int_type(args: list[object], location: SourceLocation, signed: bool) -> v.HwType:
    kind = "SInt" if signed else "UInt"
    if not args:
        return v.SIntT(None) if signed else v.UIntT(None)
    arg = args[0]
    if isinstance(arg, v.Width):
        return v.SIntT(arg.value) if signed else v.UIntT(arg.value)
    if isinstance(arg, int):
        raise ChiselError.at(
            f"{kind} width must be a Width — write {kind}({arg}.W) instead of {kind}({arg})",
            location,
            code="A3",
        )
    raise ChiselError.at(
        f"{kind}(...) expects a width (e.g. {kind}(8.W)), found {v.describe_value(arg)}",
        location,
        code="A3",
    )


def _make_io(elab, args: list[object], location: SourceLocation, ctx, name_hint: str | None):
    if not args:
        raise ChiselError.at("IO(...) requires an argument", location, code="A3")
    arg = args[0]
    prefix = name_hint or "io"
    if isinstance(arg, v.BundleT):
        view = v.BundleView()
        for field in arg.fields:
            member = _make_io_field(ctx, prefix, field, location)
            view.members[field.name] = member
        return view
    if isinstance(arg, v.Directed):
        port_name = ctx.namer.reserve(prefix)
        direction = ir.INPUT if arg.direction == "input" else ir.OUTPUT
        ctx.ports.append(ir.Port(port_name, direction, arg.tpe.to_firrtl(), location))
        binding = v.BINDING_PORT_IN if arg.direction == "input" else v.BINDING_PORT_OUT
        return v.HwValue(ir.Reference(port_name), arg.tpe, binding)
    if isinstance(arg, v.HwType):
        raise ChiselError.at(
            "IO(...) requires a direction: wrap the type in Input(...) or Output(...)",
            location,
            code="B2",
        )
    raise ChiselError.at(
        f"IO(...) expects a Chisel type, found {v.describe_value(arg)}", location, code="B2"
    )


def _make_io_field(ctx, prefix: str, field: v.BundleFieldT, location: SourceLocation):
    name = f"{prefix}_{field.name}"
    direction = field.direction or "output"
    if isinstance(field.tpe, v.BundleT):
        view = v.BundleView()
        for sub in field.tpe.fields:
            effective = v.BundleFieldT(sub.name, sub.tpe, sub.direction or direction)
            view.members[sub.name] = _make_io_field(ctx, name, effective, location)
        return view
    port_name = ctx.namer.reserve(name)
    ir_direction = ir.INPUT if direction == "input" else ir.OUTPUT
    ctx.ports.append(ir.Port(port_name, ir_direction, field.tpe.to_firrtl(), location))
    binding = v.BINDING_PORT_IN if direction == "input" else v.BINDING_PORT_OUT
    return v.HwValue(ir.Reference(port_name), field.tpe, binding)


def _make_wire(args, location, ctx, name_hint, default):
    if not args:
        raise ChiselError.at("Wire(...) requires a type argument", location, code="A3")
    tpe = _require_type(args[0], location, "Wire")
    name = ctx.namer.reserve(name_hint or "_WIRE")
    ctx.emit(ir.DefWire(name, tpe.to_firrtl(), location, has_default=default is not None))
    wire = v.HwValue(ir.Reference(name), tpe, v.BINDING_WIRE)
    if default is not None:
        ctx.emit(ir.Connect(wire.expr, default.expr, location))
    return wire


def _make_wire_default(elab, args, location, ctx, name_hint):
    if not args:
        raise ChiselError.at("WireDefault(...) requires an argument", location, code="A3")
    if len(args) == 1:
        init = _require_hw(args[0], location, "WireDefault")
        return _make_wire([init.tpe], location, ctx, name_hint, default=init)
    tpe = _require_type(args[0], location, "WireDefault")
    init = _require_hw(args[1], location, "WireDefault")
    return _make_wire([tpe], location, ctx, name_hint, default=init)


def _implicit_clock(ctx, location: SourceLocation) -> ir.Expr:
    clock = ctx.current_clock()
    if clock is None:
        raise ChiselError.at(
            "No implicit clock. A register was defined outside an implicit clock "
            "domain — wrap the definition in withClock(...) { ... }",
            location,
            code="C1",
        )
    return clock.expr


def _implicit_reset(ctx, location: SourceLocation) -> ir.Expr:
    reset = ctx.current_reset()
    if reset is None:
        raise ChiselError.at(
            "No implicit reset. RegInit was used outside an implicit reset domain — "
            "wrap the definition in withReset(...) { ... }",
            location,
            code="C1",
        )
    return reset.expr


def _make_reg(args, location, ctx, name_hint):
    if not args:
        raise ChiselError.at("Reg(...) requires a type argument", location, code="A3")
    tpe = _require_type(args[0], location, "Reg")
    clock = _implicit_clock(ctx, location)
    name = ctx.namer.reserve(name_hint or "_REG")
    ctx.emit(ir.DefRegister(name, tpe.to_firrtl(), clock, None, None, location))
    return v.HwValue(ir.Reference(name), tpe, v.BINDING_REG)


def _make_reg_init(args, location, ctx, name_hint):
    if not args:
        raise ChiselError.at("RegInit(...) requires an argument", location, code="A3")
    if len(args) == 1:
        init = _require_hw(args[0], location, "RegInit")
        tpe = init.tpe
    else:
        tpe = _require_type(args[0], location, "RegInit")
        init = _require_hw(args[1], location, "RegInit")
    clock = _implicit_clock(ctx, location)
    reset = _implicit_reset(ctx, location)
    name = ctx.namer.reserve(name_hint or "_REG")
    ctx.emit(ir.DefRegister(name, tpe.to_firrtl(), clock, reset, init.expr, location))
    return v.HwValue(ir.Reference(name), tpe, v.BINDING_REG)


def _make_reg_next(args, location, ctx, name_hint):
    if not args:
        raise ChiselError.at("RegNext(...) requires an argument", location, code="A3")
    next_value = _require_hw(args[0], location, "RegNext")
    clock = _implicit_clock(ctx, location)
    name = ctx.namer.reserve(name_hint or "_REG")
    if len(args) >= 2:
        init = _require_hw(args[1], location, "RegNext")
        reset = _implicit_reset(ctx, location)
        ctx.emit(
            ir.DefRegister(name, next_value.tpe.to_firrtl(), clock, reset, init.expr, location)
        )
    else:
        ctx.emit(ir.DefRegister(name, next_value.tpe.to_firrtl(), clock, None, None, location))
    reg = v.HwValue(ir.Reference(name), next_value.tpe, v.BINDING_REG)
    ctx.emit(ir.Connect(reg.expr, next_value.expr, location))
    return reg


def _make_reg_enable(args, location, ctx, name_hint):
    if len(args) < 2:
        raise ChiselError.at("RegEnable(next, enable) requires 2 arguments", location, code="A3")
    next_value = _require_hw(args[0], location, "RegEnable")
    enable = _require_hw(args[-1], location, "RegEnable")
    clock = _implicit_clock(ctx, location)
    name = ctx.namer.reserve(name_hint or "_REG")
    ctx.emit(ir.DefRegister(name, next_value.tpe.to_firrtl(), clock, None, None, location))
    reg = v.HwValue(ir.Reference(name), next_value.tpe, v.BINDING_REG)
    conditional = ir.Conditionally(enable.expr, ir.Block([ir.Connect(reg.expr, next_value.expr, location)]), ir.Block(), location)
    ctx.emit(conditional)
    return reg


def _make_mux(elab, args, location):
    if len(args) != 3:
        raise ChiselError.at(
            f"Mux(cond, tval, fval) expects 3 arguments, found {len(args)}",
            location,
            code="A3",
        )
    condition = args[0]
    if not isinstance(condition, v.HwValue) or not isinstance(
        condition.tpe, (v.BoolT, v.UIntT)
    ):
        raise ChiselError.at(
            f"type mismatch;\n found   : {v.describe_value(condition)}\n required: chisel3.Bool",
            location,
            code="B5",
        )
    if isinstance(condition.tpe, v.UIntT) and condition.tpe.width not in (1, None):
        raise ChiselError.at(
            "type mismatch;\n found   : chisel3.UInt\n required: chisel3.Bool\n"
            "Mux condition must be a Bool",
            location,
            code="B5",
        )
    true_value = _require_hw(args[1], location, "Mux")
    false_value = _require_hw(args[2], location, "Mux")
    result_type = _merge_types(true_value.tpe, false_value.tpe, location)
    return v.HwValue(
        ir.Mux(condition.expr, true_value.expr, false_value.expr), result_type, v.BINDING_OP
    )


def _flatten_cat_args(args: list[object], location: SourceLocation) -> list[v.HwValue]:
    flat: list[v.HwValue] = []
    for arg in args:
        if isinstance(arg, (list, tuple)):
            flat.extend(_flatten_cat_args(list(arg), location))
        elif isinstance(arg, v.HwValue) and isinstance(arg.tpe, v.VecT):
            # Cat(vec) concatenates with the last element as MSB.
            for index in reversed(range(arg.tpe.size)):
                flat.append(
                    v.HwValue(ir.SubIndex(arg.expr, index), arg.tpe.element, arg.binding)
                )
        else:
            flat.append(_require_hw(arg, location, "Cat"))
    return flat


def _make_cat(args, location):
    flat = _flatten_cat_args(args, location)
    if not flat:
        raise ChiselError.at("Cat(...) requires at least one argument", location, code="A3")
    result = flat[0]
    width = _type_width(result.tpe)
    for operand in flat[1:]:
        operand_width = _type_width(operand.tpe)
        width = None if width is None or operand_width is None else width + operand_width
        result = v.HwValue(
            ir.DoPrim("cat", (result.expr, operand.expr)), v.UIntT(width), v.BINDING_OP
        )
    if len(flat) == 1:
        result = v.HwValue(
            ir.DoPrim("asUInt", (result.expr,)), v.UIntT(_type_width(result.tpe)), v.BINDING_OP
        )
    return result


def _make_fill(args, location):
    if len(args) != 2:
        raise ChiselError.at("Fill(n, x) expects 2 arguments", location, code="A3")
    count = _require_int(args[0], location, "Fill count")
    operand = _require_hw(args[1], location, "Fill")
    if count <= 0:
        raise ChiselError.at("Fill count must be positive", location, code="A3")
    result = operand
    width = _type_width(operand.tpe)
    for _ in range(count - 1):
        total = None if width is None or _type_width(result.tpe) is None else width + _type_width(result.tpe)
        result = v.HwValue(
            ir.DoPrim("cat", (result.expr, operand.expr)), v.UIntT(total), v.BINDING_OP
        )
    if count == 1:
        result = v.HwValue(
            ir.DoPrim("asUInt", (operand.expr,)), v.UIntT(width), v.BINDING_OP
        )
    return result


def _make_vecinit(args, location, ctx, name_hint):
    elements: list[object] = []
    if len(args) == 1 and isinstance(args[0], (list, tuple)):
        elements = list(args[0])
    else:
        elements = list(args)
    if not elements:
        raise ChiselError.at("VecInit(...) requires at least one element", location, code="A3")
    hw_elements = [_require_hw(e, location, "VecInit") for e in elements]
    element_type: v.HwType = hw_elements[0].tpe
    for element in hw_elements[1:]:
        element_type = _merge_types(element_type, element.tpe, location)
    vec_type = v.VecT(len(hw_elements), element_type)
    name = ctx.namer.reserve(name_hint or "_VEC")
    ctx.emit(ir.DefWire(name, vec_type.to_firrtl(), location, has_default=True))
    vec = v.HwValue(ir.Reference(name), vec_type, v.BINDING_WIRE)
    for index, element in enumerate(hw_elements):
        ctx.emit(ir.Connect(ir.SubIndex(vec.expr, index), element.expr, location))
    return vec


def _make_mem(args, location, ctx, name_hint, sync_read):
    kind = "SyncReadMem" if sync_read else "Mem"
    if len(args) != 2:
        raise ChiselError.at(
            f"{kind}(size, t) expects 2 arguments, found {len(args)}", location, code="A3"
        )
    size = _require_int(args[0], location, f"{kind} size")
    if size < 1:
        raise ChiselError.at(
            f"{kind} size must be a positive Int, found {size}", location, code="A3"
        )
    element = _require_type(args[1], location, f"{kind} element")
    if not isinstance(element, (v.UIntT, v.SIntT, v.BoolT)):
        raise ChiselError.at(
            f"{kind} elements must be ground types (UInt, SInt or Bool) in this "
            f"Chisel subset, found {element.chisel_name()}",
            location,
            code="UNSUPPORTED",
        )
    if _type_width(element) is None:
        raise ChiselError.at(
            f"{kind} element type must have an explicit width (e.g. UInt(8.W))",
            location,
            code="A3",
        )
    clock = _implicit_clock(ctx, location)
    mem_name = ctx.namer.reserve(name_hint or "_MEM")
    ctx.emit(ir.DefMemory(mem_name, element.to_firrtl(), size, sync_read, clock, location))
    return v.MemValue(mem_name, element, size, sync_read)


def _mem_addr(mem: v.MemValue, arg: object, location: SourceLocation) -> v.HwValue:
    addr = _require_hw(arg, location, f"{mem.kind_name()} address")
    if not isinstance(addr.tpe, (v.UIntT, v.BoolT)):
        raise ChiselError.at(
            f"type mismatch;\n found   : {addr.type_name()}\n required: chisel3.UInt\n"
            f"{mem.kind_name()} addresses must be UInt",
            location,
            code="B5",
        )
    return addr


def _mem_access(mem: v.MemValue, addr: v.HwValue) -> ir.Expr:
    return ir.SubAccess(ir.Reference(mem.name), addr.expr)


def _mem_read(mem: v.MemValue, args, location, ctx, name_hint):
    if not args:
        raise ChiselError.at(
            f"{mem.kind_name()}.read(addr) requires an address argument", location, code="A3"
        )
    addr = _mem_addr(mem, args[0], location)
    if not mem.sync_read:
        if len(args) != 1:
            raise ChiselError.at(
                "Mem.read(addr) expects 1 argument; the enable variant is only "
                "available on SyncReadMem",
                location,
                code="A3",
            )
        # Combinational read; the SubAccess stays a legal connect target so
        # ``mem(addr) := data`` works through the same value.
        return v.HwValue(_mem_access(mem, addr), mem.element, v.BINDING_WIRE)
    if len(args) > 2:
        raise ChiselError.at(
            f"SyncReadMem.read expects (addr) or (addr, enable), found {len(args)} "
            "arguments",
            location,
            code="A3",
        )
    enable = None
    if len(args) == 2:
        enable = _require_hw(args[1], location, "SyncReadMem.read enable")
        if not isinstance(enable.tpe, v.BoolT) and _type_width(enable.tpe) not in (1, None):
            raise ChiselError.at(
                f"type mismatch;\n found   : {enable.type_name()}\n required: chisel3.Bool",
                location,
                code="B5",
            )
    # Synchronous read: a hidden register captures the addressed element, so
    # the value observed is the memory contents *before* this edge's writes
    # (read-first semantics in every backend).
    clock = _implicit_clock(ctx, location)
    reg_name = ctx.namer.reserve(name_hint or "_MEM_rd")
    ctx.emit(ir.DefRegister(reg_name, mem.element.to_firrtl(), clock, None, None, location))
    connect = ir.Connect(ir.Reference(reg_name), _mem_access(mem, addr), location)
    if enable is None:
        ctx.emit(connect)
    else:
        ctx.emit(ir.Conditionally(enable.expr, ir.Block([connect]), ir.Block(), location))
    return v.HwValue(ir.Reference(reg_name), mem.element, v.BINDING_NODE)


def _mem_write(mem: v.MemValue, args, location, ctx):
    if len(args) != 2:
        raise ChiselError.at(
            f"{mem.kind_name()}.write(addr, data) expects 2 arguments, found {len(args)}",
            location,
            code="A3",
        )
    addr = _mem_addr(mem, args[0], location)
    data = _require_hw(args[1], location, f"{mem.kind_name()}.write data")
    elem_signed = isinstance(mem.element, v.SIntT)
    data_signed = isinstance(data.tpe, v.SIntT)
    if elem_signed != data_signed:
        raise ChiselError.at(
            f"type mismatch;\n found   : {data.type_name()}\n "
            f"required: {mem.element.chisel_name()}",
            location,
            code="B5",
        )
    ctx.emit(ir.Connect(_mem_access(mem, addr), data.expr, location))
    return None


def _mem_member(elab, mem: v.MemValue, name, args, location, ctx, name_hint):
    if name == "read":
        return _mem_read(mem, args, location, ctx, name_hint)
    if name == "write":
        return _mem_write(mem, args, location, ctx)
    if name == "apply":
        return apply_value(elab, mem, args, location)
    if name in ("length", "size", "depth"):
        return mem.depth
    raise ChiselError.at(
        f"value {name} is not a member of {mem.chisel_name()}", location, code="A1"
    )


# ---------------------------------------------------------------------------
# Member calls (methods and field selection)
# ---------------------------------------------------------------------------


def call_member(
    elab,
    target: object,
    name: str,
    args: list[object],
    type_args: list[str],
    extra_arg_lists: list[list[object]],
    location: SourceLocation,
    scope,
    ctx,
    name_hint: str | None = None,
) -> object:
    # Companion-object style calls (Seq.fill, VecInit.tabulate, math.max, ...).
    if isinstance(target, tuple) and len(target) == 2 and target[0] == "companion":
        return _companion_member(elab, target[1], name, args, extra_arg_lists, location, ctx, name_hint)

    if isinstance(target, bool):
        return _bool_member(target, name, location)
    if isinstance(target, int):
        return _int_member(target, name, args, location)
    if isinstance(target, str):
        return _string_member(target, name, args, location)
    if isinstance(target, (list, tuple)):
        return _seq_member(elab, list(target), name, args, location, ctx)
    if isinstance(target, range):
        return _seq_member(elab, list(target), name, args, location, ctx)
    if isinstance(target, v.BundleView):
        member = _bundle_view_member(target, name, location)
        if args:
            # ``io.field(i)`` — field access followed by application (bit
            # extract or Vec indexing).
            return apply_value(elab, member, args, location)
        return member
    if isinstance(target, v.MemValue):
        return _mem_member(elab, target, name, args, location, ctx, name_hint)
    if isinstance(target, v.HwValue):
        return _hw_member(elab, target, name, args, type_args, location, ctx)
    if isinstance(target, (v.HwType, v.Directed)):
        raise ChiselError.at(
            f"{v.describe_value(target)} must be hardware, not a bare Chisel type. "
            "Perhaps you forgot to wrap it in Wire(_) or IO(_)?",
            location,
            code="B2",
        )
    if isinstance(target, v.Width):
        raise ChiselError.at(
            f"value {name} is not a member of chisel3.internal.firrtl.Width",
            location,
            code="A1",
        )
    raise ChiselError.at(
        f"value {name} is not a member of {v.describe_value(target)}", location, code="A1"
    )


def _companion_member(elab, companion, name, args, extra_arg_lists, location, ctx, name_hint):
    if companion in ("Seq", "List", "Array"):
        if name == "fill":
            count = _require_int(args[0], location, "Seq.fill")
            if not extra_arg_lists or not extra_arg_lists[0]:
                raise ChiselError.at(
                    "Seq.fill(n)(element) requires an element argument list",
                    location,
                    code="A3",
                )
            element = extra_arg_lists[0][0]
            return [element for _ in range(count)]
        if name == "tabulate":
            count = _require_int(args[0], location, "Seq.tabulate")
            if not extra_arg_lists or not extra_arg_lists[0]:
                raise ChiselError.at(
                    "Seq.tabulate(n)(f) requires a function argument list", location, code="A3"
                )
            func = extra_arg_lists[0][0]
            return [_call_lambda(elab, func, [index], ctx, location) for index in range(count)]
        if name == "range":
            start = _require_int(args[0], location, "Seq.range")
            end = _require_int(args[1], location, "Seq.range")
            return list(range(start, end))
        if name == "empty":
            return []
    if companion in ("Vec", "VecInit"):
        if name == "fill":
            count = _require_int(args[0], location, f"{companion}.fill")
            element = extra_arg_lists[0][0] if extra_arg_lists and extra_arg_lists[0] else None
            if companion == "Vec":
                tpe = _require_type(element, location, "Vec.fill")
                return v.VecT(count, tpe)
            if element is None:
                raise ChiselError.at("VecInit.fill(n)(element) requires an element", location, code="A3")
            return _make_vecinit([[element] * count], location, ctx, name_hint)
        if name == "tabulate":
            count = _require_int(args[0], location, f"{companion}.tabulate")
            func = extra_arg_lists[0][0] if extra_arg_lists and extra_arg_lists[0] else None
            elements = [_call_lambda(elab, func, [index], ctx, location) for index in range(count)]
            return _make_vecinit([elements], location, ctx, name_hint)
    if companion == "math":
        if name == "max":
            return max(_require_int(args[0], location, "math.max"), _require_int(args[1], location, "math.max"))
        if name == "min":
            return min(_require_int(args[0], location, "math.min"), _require_int(args[1], location, "math.min"))
        if name == "pow":
            return int(math.pow(args[0], args[1]))
    raise ChiselError.at(
        f"value {name} is not a member of object {companion}", location, code="A1"
    )


def _bool_member(target: bool, name: str, location: SourceLocation) -> object:
    if name == "B":
        return _bool_lit(target)
    if name == "asBool":
        return _bool_lit(target)
    if name == "U":
        return _uint_lit(1 if target else 0, 1)
    raise ChiselError.at(f"value {name} is not a member of Boolean", location, code="A1")


def _int_member(target: int, name: str, args: list[object], location: SourceLocation) -> object:
    if name == "U":
        width = None
        if args and isinstance(args[0], v.Width):
            width = args[0].value
            if width < min_width_for(target):
                raise ChiselError.at(
                    f"literal {target} does not fit in {width} bits", location, code="A3"
                )
        if target < 0:
            raise ChiselError.at(
                f"UInt literal {target} is negative; use .S for signed literals",
                location,
                code="A3",
            )
        return _uint_lit(target, width)
    if name == "S":
        width = None
        if args and isinstance(args[0], v.Width):
            width = args[0].value
        return _sint_lit(target, width)
    if name == "B":
        if target in (0, 1):
            return _bool_lit(bool(target))
        raise ChiselError.at(f"cannot convert {target} to Bool with .B", location, code="A3")
    if name == "W":
        if target < 0:
            raise ChiselError.at("width must be non-negative", location, code="A3")
        return v.Width(target)
    if name == "asUInt":
        return _uint_lit(target, None)
    if name in ("to", "until"):
        if not args:
            raise ChiselError.at(f"{name} requires an argument", location, code="A3")
        end = _require_int(args[0], location, name)
        return range(target, end + 1) if name == "to" else range(target, end)
    if name in ("min", "max"):
        other = _require_int(args[0], location, name)
        return min(target, other) if name == "min" else max(target, other)
    if name == "toInt":
        return target
    if name == "abs":
        return abs(target)
    raise ChiselError.at(f"value {name} is not a member of Int", location, code="A1")


def _string_member(target: str, name: str, args: list[object], location: SourceLocation) -> object:
    if name in ("U", "S"):
        try:
            bits = parse_literal(target, signed=(name == "S"))
        except LiteralError as exc:
            raise ChiselError.at(str(exc), location, code="A3") from None
        width = bits.width
        if args and isinstance(args[0], v.Width):
            if args[0].value < width:
                raise ChiselError.at(
                    f"literal \"{target}\" does not fit in {args[0].value} bits",
                    location,
                    code="A3",
                )
            width = args[0].value
        if name == "U":
            return _uint_lit(bits.value, width)
        return _sint_lit(bits.as_int, width)
    if name == "length":
        return len(target)
    raise ChiselError.at(f"value {name} is not a member of String", location, code="A1")


def _seq_member(elab, items: list[object], name: str, args: list[object], location, ctx) -> object:
    if name == "map":
        return [_call_lambda(elab, args[0], [item], ctx, location) for item in items]
    if name == "foreach":
        for item in items:
            _call_lambda(elab, args[0], [item], ctx, location)
        return None
    if name == "filter":
        return [item for item in items if _call_lambda(elab, args[0], [item], ctx, location)]
    if name == "reduce":
        if not items:
            raise ChiselError.at("reduce of empty sequence", location, code="A3")
        accumulator = items[0]
        for item in items[1:]:
            accumulator = _call_lambda(elab, args[0], [accumulator, item], ctx, location)
        return accumulator
    if name == "foldLeft":
        accumulator = args[0]
        # foldLeft(z)(f) — the function arrives through apply_value on the result.
        return ("foldLeft", items, accumulator)
    if name == "zipWithIndex":
        return [(item, index) for index, item in enumerate(items)]
    if name in ("length", "size"):
        return len(items)
    if name == "indices":
        return range(len(items))
    if name == "reverse":
        return list(reversed(items))
    if name == "sum":
        return sum(items)
    if name == "head":
        return items[0]
    if name == "last":
        return items[-1]
    if name == "take":
        return items[: _require_int(args[0], location, "take")]
    if name == "drop":
        return items[_require_int(args[0], location, "drop"):]
    if name == "contains":
        return args[0] in items
    if name == "isEmpty":
        return len(items) == 0
    if name == "nonEmpty":
        return len(items) > 0
    if name == "apply":
        return apply_value(elab, items, args, location)
    raise ChiselError.at(f"value {name} is not a member of Seq", location, code="A1")


def _bundle_view_member(view: v.BundleView, name: str, location: SourceLocation) -> object:
    member = view.member(name)
    if member is None:
        import difflib

        matches = difflib.get_close_matches(name, list(view.members), n=1)
        hint = f" Did you mean {matches[0]}?" if matches else ""
        raise ChiselError.at(
            f"value {name} is not a member of the IO Bundle.{hint}", location, code="A1"
        )
    return member


def _hw_member(elab, target: v.HwValue, name: str, args, type_args, location, ctx) -> object:
    tpe = target.tpe

    # Bundle field access on a wire/reg of bundle type.
    if isinstance(tpe, v.BundleT):
        field = tpe.field_named(name)
        if field is not None:
            member = v.HwValue(ir.SubField(target.expr, name), field.tpe, target.binding)
            if args:
                return apply_value(elab, member, args, location)
            return member

    if name == "asInstanceOf":
        requested = type_args[0] if type_args else "Data"
        raise ChiselError.at(
            f"class {tpe.chisel_name()} cannot be cast to class chisel3.{requested}; "
            f"use .as{requested}() instead of asInstanceOf",
            location,
            code="A2",
        )
    if name == "asUInt":
        if isinstance(tpe, v.VecT):
            return _vec_as_uint(target, location)
        width = _type_width(tpe)
        return v.HwValue(ir.DoPrim("asUInt", (target.expr,)), v.UIntT(width), v.BINDING_OP)
    if name == "asSInt":
        width = _type_width(tpe)
        return v.HwValue(ir.DoPrim("asSInt", (target.expr,)), v.SIntT(width), v.BINDING_OP)
    if name == "asBool":
        width = _type_width(tpe)
        if width not in (1, None):
            raise ChiselError.at(
                f"cannot call asBool on a {width}-bit value; asBool requires a 1-bit value",
                location,
                code="B5",
            )
        return v.HwValue(target.expr, v.BoolT(), target.binding)
    if name == "asClock":
        if isinstance(tpe, v.BoolT):
            return v.HwValue(ir.DoPrim("asClock", (target.expr,)), v.ClockT(), v.BINDING_OP)
        raise ChiselError.at(
            f"value asClock is not a member of {tpe.chisel_name()}",
            location,
            code="B6",
        )
    if name == "asAsyncReset":
        if isinstance(tpe, v.BoolT):
            return v.HwValue(
                ir.DoPrim("asAsyncReset", (target.expr,)), v.AsyncResetT(), v.BINDING_OP
            )
        raise ChiselError.at(
            f"value asAsyncReset is not a member of {tpe.chisel_name()}", location, code="B6"
        )
    if name == "asTypeOf":
        if args and isinstance(args[0], (v.HwType, v.Directed)):
            requested = args[0].tpe if isinstance(args[0], v.Directed) else args[0]
            width = _type_width(requested)
            if isinstance(requested, v.SIntT):
                return v.HwValue(ir.DoPrim("asSInt", (target.expr,)), requested, v.BINDING_OP)
            return v.HwValue(ir.DoPrim("asUInt", (target.expr,)), v.UIntT(width), v.BINDING_OP)
        raise ChiselError.at("asTypeOf expects a Chisel type argument", location, code="A3")
    if name in ("andR", "orR", "xorR"):
        op = {"andR": "andr", "orR": "orr", "xorR": "xorr"}[name]
        return v.HwValue(ir.DoPrim(op, (target.expr,)), v.BoolT(), v.BINDING_OP)
    if name == "litValue":
        if isinstance(target.expr, (ir.UIntLiteral, ir.SIntLiteral)):
            return target.expr.value
        raise ChiselError.at(
            "litValue can only be called on a literal; this value is not a compile-time "
            "constant",
            location,
            code="A3",
        )
    if name == "getWidth":
        width = _type_width(tpe)
        if width is None:
            raise ChiselError.at("width of this value is not yet inferred", location, code="A3")
        return width
    if name in ("pad",):
        amount = _require_int(args[0], location, "pad")
        width = _type_width(tpe)
        new_width = None if width is None else max(width, amount)
        result_type = v.SIntT(new_width) if isinstance(tpe, v.SIntT) else v.UIntT(new_width)
        return v.HwValue(
            ir.DoPrim("pad", (target.expr,), (amount,)), result_type, v.BINDING_OP
        )
    if name == "head":
        amount = _require_int(args[0], location, "head")
        return v.HwValue(
            ir.DoPrim("head", (target.expr,), (amount,)), v.UIntT(amount), v.BINDING_OP
        )
    if name == "tail":
        amount = _require_int(args[0], location, "tail")
        width = _type_width(tpe)
        new_width = None if width is None else max(width - amount, 0)
        return v.HwValue(
            ir.DoPrim("tail", (target.expr,), (amount,)), v.UIntT(new_width), v.BINDING_OP
        )
    if name == "apply":
        return apply_value(elab, target, args, location)

    # Vec-specific collection methods.
    if isinstance(tpe, v.VecT):
        elements = [
            v.HwValue(ir.SubIndex(target.expr, index), tpe.element, target.binding)
            for index in range(tpe.size)
        ]
        if name in ("map", "foreach", "reduce", "filter", "zipWithIndex", "length",
                    "size", "indices", "reverse", "head", "last", "contains",
                    "isEmpty", "nonEmpty", "take", "drop"):
            return _seq_member(elab, elements, name, args, location, ctx)

    if name in ("U", "S", "B", "W"):
        raise ChiselError.at(
            f"value {name} is not a member of {tpe.chisel_name()}; .{name} applies to "
            "Scala literals, not hardware values",
            location,
            code="A1",
        )
    raise ChiselError.at(
        f"value {name} is not a member of {tpe.chisel_name()}", location, code="A1"
    )


def _vec_as_uint(target: v.HwValue, location: SourceLocation) -> v.HwValue:
    tpe = target.tpe
    assert isinstance(tpe, v.VecT)
    element_width = _type_width(tpe.element)
    result: v.HwValue | None = None
    width = 0 if element_width is not None else None
    # Element 0 is the least-significant chunk.
    for index in range(tpe.size):
        element = v.HwValue(ir.SubIndex(target.expr, index), tpe.element, target.binding)
        if result is None:
            result = element
            width = element_width
        else:
            width = None if width is None or element_width is None else width + element_width
            result = v.HwValue(
                ir.DoPrim("cat", (element.expr, result.expr)), v.UIntT(width), v.BINDING_OP
            )
    assert result is not None
    if tpe.size == 1:
        return v.HwValue(
            ir.DoPrim("asUInt", (result.expr,)), v.UIntT(element_width), v.BINDING_OP
        )
    return result


# ---------------------------------------------------------------------------
# Application: expr(args)
# ---------------------------------------------------------------------------


def apply_value(elab, target: object, args: list[object], location: SourceLocation) -> object:
    if isinstance(target, tuple) and len(target) == 3 and target[0] == "lambda":
        # Direct application of a lambda value.
        return _call_lambda(elab, target, args, None, location)
    if isinstance(target, tuple) and len(target) == 3 and target[0] == "foldLeft":
        _, items, accumulator = target
        func = args[0]
        for item in items:
            accumulator = _call_lambda(elab, func, [accumulator, item], None, location)
        return accumulator
    if isinstance(target, (list, tuple)):
        items = list(target)
        if len(args) != 1:
            raise ChiselError.at(
                f"Too many arguments. Found {len(args)}, expected 1 for method apply: (i: Int)",
                location,
                code="A3",
            )
        index = _require_int(args[0], location, "Seq apply")
        if index < 0 or index >= len(items):
            raise ChiselError.at(
                f"{index} is out of bounds (min 0, max {len(items) - 1})", location, code="B7"
            )
        return items[index]
    if isinstance(target, range):
        return apply_value(elab, list(target), args, location)
    if isinstance(target, v.BundleView):
        raise ChiselError.at(
            "an IO bundle cannot be applied; access its fields with .fieldName",
            location,
            code="A3",
        )
    if isinstance(target, (v.HwType, v.Directed)):
        raise ChiselError.at(
            f"{v.describe_value(target)} must be hardware, not a bare Chisel type. "
            "Perhaps you forgot to wrap it in Wire(_) or IO(_)?",
            location,
            code="B2",
        )
    if isinstance(target, v.MemValue):
        if target.sync_read:
            raise ChiselError.at(
                "SyncReadMem(addr) is ambiguous in this Chisel subset (the apply "
                "form mixes a synchronous read port with a combinational write "
                "address); use .read(addr) and .write(addr, data) instead",
                location,
                code="UNSUPPORTED",
            )
        if len(args) != 1:
            raise ChiselError.at(
                f"Too many arguments. Found {len(args)}, expected 1 for method "
                "apply: (addr: UInt)",
                location,
                code="A3",
            )
        addr = _mem_addr(target, args[0], location)
        return v.HwValue(_mem_access(target, addr), target.element, v.BINDING_WIRE)
    if isinstance(target, v.HwValue):
        return _apply_hw(target, args, location)
    raise ChiselError.at(
        f"{v.describe_value(target)} cannot be applied", location, code="A3"
    )


def _apply_hw(target: v.HwValue, args: list[object], location: SourceLocation) -> object:
    tpe = target.tpe
    if isinstance(tpe, v.VecT):
        if len(args) != 1:
            raise ChiselError.at(
                f"Too many arguments. Found {len(args)}, expected 1 for method apply: (i: Int)",
                location,
                code="A3",
            )
        index = args[0]
        if isinstance(index, v.HwValue):
            return v.HwValue(ir.SubAccess(target.expr, index.expr), tpe.element, target.binding)
        index_int = _require_int(index, location, "Vec index")
        if index_int < 0 or index_int >= tpe.size:
            raise ChiselError.at(
                f"{index_int} is out of bounds (min 0, max {tpe.size - 1})",
                location,
                code="B7",
            )
        return v.HwValue(ir.SubIndex(target.expr, index_int), tpe.element, target.binding)
    if isinstance(tpe, (v.UIntT, v.SIntT, v.BoolT)):
        width = _type_width(tpe)
        if len(args) == 1:
            index = args[0]
            if isinstance(index, v.HwValue):
                shifted = ir.DoPrim("dshr", (target.expr, index.expr))
                return v.HwValue(
                    ir.DoPrim("bits", (shifted,), (0, 0)), v.BoolT(), v.BINDING_OP
                )
            index_int = _require_int(index, location, "bit index")
            if index_int < 0 or (width is not None and index_int >= width):
                max_index = "?" if width is None else str(width - 1)
                raise ChiselError.at(
                    f"{index_int} is out of bounds (min 0, max {max_index})",
                    location,
                    code="B7",
                )
            return v.HwValue(
                ir.DoPrim("bits", (target.expr,), (index_int, index_int)),
                v.BoolT(),
                v.BINDING_OP,
            )
        if len(args) == 2:
            hi_arg, lo_arg = args
            if isinstance(hi_arg, v.HwValue) or isinstance(lo_arg, v.HwValue):
                hi_name = hi_arg.type_name() if isinstance(hi_arg, v.HwValue) else "Int"
                lo_name = lo_arg.type_name() if isinstance(lo_arg, v.HwValue) else "Int"
                raise ChiselError.at(
                    "overloaded method apply with alternatives:\n"
                    "  (x: BigInt, y: BigInt)chisel3.UInt <and>\n"
                    "  (x: Int, y: Int)chisel3.UInt\n"
                    f" cannot be applied to ({hi_name}, {lo_name})\n"
                    "bit-extract bounds must be compile-time Scala Ints",
                    location,
                    code="A3",
                )
            hi = _require_int(hi_arg, location, "bit extract")
            lo = _require_int(lo_arg, location, "bit extract")
            if lo < 0 or hi < lo or (width is not None and hi >= width):
                max_index = "?" if width is None else str(width - 1)
                raise ChiselError.at(
                    f"bit range [{hi}:{lo}] is out of bounds (min 0, max {max_index})",
                    location,
                    code="B7",
                )
            return v.HwValue(
                ir.DoPrim("bits", (target.expr,), (hi, lo)),
                v.UIntT(hi - lo + 1),
                v.BINDING_OP,
            )
        raise ChiselError.at(
            f"Too many arguments. Found {len(args)}, expected 1 or 2 for method apply",
            location,
            code="A3",
        )
    raise ChiselError.at(
        f"values of type {tpe.chisel_name()} cannot be indexed", location, code="A3"
    )


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------

_ARITH_OPS = {"+", "-", "*", "/", "%", "+&", "-&", "+%", "-%"}
_COMPARE_OPS = {"<", ">", "<=", ">="}


def binary_op(elab, op: str, left: object, right: object, location: SourceLocation) -> object:
    left_hw = isinstance(left, v.HwValue)
    right_hw = isinstance(right, v.HwValue)

    if isinstance(left, (v.HwType, v.Directed)) or isinstance(right, (v.HwType, v.Directed)):
        offender = left if isinstance(left, (v.HwType, v.Directed)) else right
        raise ChiselError.at(
            f"{v.describe_value(offender)} must be hardware, not a bare Chisel type. "
            "Perhaps you forgot to wrap it in Wire(_) or IO(_)?",
            location,
            code="B2",
        )

    if not left_hw and not right_hw:
        return _scala_binary(op, left, right, location)

    # Static shift amounts may be Scala Ints.
    if op in ("<<", ">>") and left_hw and isinstance(right, int) and not isinstance(right, bool):
        return _hw_shift_const(left, op, right)

    if left_hw != right_hw:
        scala_side = right if left_hw else left
        hw_side = left if left_hw else right
        raise ChiselError.at(
            f"type mismatch;\n found   : {v.describe_value(scala_side)}\n "
            f"required: {hw_side.type_name()}\n"
            f"operator {op} cannot mix hardware and Scala values — convert the literal "
            "with .U / .S / .B",
            location,
            code="B5",
        )

    return _hw_binary(op, left, right, location)


def _scala_binary(op: str, left: object, right: object, location: SourceLocation) -> object:
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left // right if isinstance(left, int) and isinstance(right, int) else left / right
        if op == "%":
            return left % right
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == ">":
            return left > right
        if op == "<=":
            return left <= right
        if op == ">=":
            return left >= right
        if op == "&&":
            return bool(left) and bool(right)
        if op == "||":
            return bool(left) or bool(right)
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "<<":
            return left << right
        if op == ">>":
            return left >> right
        if op == "until":
            return range(left, right)
        if op == "to":
            return range(left, right + 1)
        if op == "min":
            return min(left, right)
        if op == "max":
            return max(left, right)
        if op in ("===", "=/="):
            raise ChiselError.at(
                f"value {op} is not a member of {v.describe_value(left)}; === compares "
                "hardware values, use == for Scala values",
                location,
                code="A1",
            )
    except TypeError as exc:
        raise ChiselError.at(
            f"type mismatch in Scala expression: {exc}", location, code="B5"
        ) from None
    except ZeroDivisionError:
        raise ChiselError.at("division by zero in Scala expression", location, code="B5") from None
    raise ChiselError.at(f"unsupported Scala operator {op}", location, code="PARSE")


def _hw_shift_const(left: v.HwValue, op: str, amount: int) -> v.HwValue:
    width = _type_width(left.tpe)
    if op == "<<":
        new_width = None if width is None else width + amount
        prim = ir.DoPrim("shl", (left.expr,), (amount,))
    else:
        new_width = None if width is None else max(width - amount, 1)
        prim = ir.DoPrim("shr", (left.expr,), (amount,))
    result_type = v.SIntT(new_width) if isinstance(left.tpe, v.SIntT) else v.UIntT(new_width)
    return v.HwValue(prim, result_type, v.BINDING_OP)


def _hw_binary(op: str, left: v.HwValue, right: v.HwValue, location: SourceLocation) -> v.HwValue:
    left_type, right_type = left.tpe, right.tpe

    if isinstance(left_type, v.ClockT) or isinstance(right_type, v.ClockT):
        raise ChiselError.at(
            f"value {op} is not a member of chisel3.Clock; convert with asUInt first",
            location,
            code="B6",
        )

    if op in ("==", "!="):
        raise ChiselError.at(
            f"hardware values cannot be compared with {op}; use "
            f"{'===' if op == '==' else '=/='} for hardware equality",
            location,
            code="A2",
        )

    if op in _ARITH_OPS and (isinstance(left_type, v.BoolT) or isinstance(right_type, v.BoolT)):
        raise ChiselError.at(
            "type mismatch;\n found   : chisel3.Bool\n required: chisel3.UInt\n"
            f"operator {op} is not defined on Bool — convert with .asUInt first",
            location,
            code="B5",
        )

    if op in ("&&", "||"):
        for side in (left, right):
            if not isinstance(side.tpe, v.BoolT) and _type_width(side.tpe) not in (1, None):
                raise ChiselError.at(
                    f"type mismatch;\n found   : {side.type_name()}\n required: chisel3.Bool",
                    location,
                    code="B5",
                )
        prim = "and" if op == "&&" else "or"
        return v.HwValue(ir.DoPrim(prim, (left.expr, right.expr)), v.BoolT(), v.BINDING_OP)

    left_width, right_width = _type_width(left_type), _type_width(right_type)
    max_width = None if left_width is None or right_width is None else max(left_width, right_width)
    both_signed = isinstance(left_type, v.SIntT) and isinstance(right_type, v.SIntT)

    def numeric_type(width: int | None) -> v.HwType:
        return v.SIntT(width) if both_signed else v.UIntT(width)

    if op in ("===", "=/="):
        prim = "eq" if op == "===" else "neq"
        return v.HwValue(ir.DoPrim(prim, (left.expr, right.expr)), v.BoolT(), v.BINDING_OP)
    if op in _COMPARE_OPS:
        prim = {"<": "lt", ">": "gt", "<=": "leq", ">=": "geq"}[op]
        return v.HwValue(ir.DoPrim(prim, (left.expr, right.expr)), v.BoolT(), v.BINDING_OP)
    if op in ("+", "+%"):
        return v.HwValue(ir.DoPrim("addw", (left.expr, right.expr)), numeric_type(max_width), v.BINDING_OP)
    if op == "+&":
        width = None if max_width is None else max_width + 1
        return v.HwValue(ir.DoPrim("add", (left.expr, right.expr)), numeric_type(width), v.BINDING_OP)
    if op in ("-", "-%"):
        return v.HwValue(ir.DoPrim("subw", (left.expr, right.expr)), numeric_type(max_width), v.BINDING_OP)
    if op == "-&":
        width = None if max_width is None else max_width + 1
        return v.HwValue(ir.DoPrim("sub", (left.expr, right.expr)), numeric_type(width), v.BINDING_OP)
    if op == "*":
        width = None if left_width is None or right_width is None else left_width + right_width
        return v.HwValue(ir.DoPrim("mul", (left.expr, right.expr)), numeric_type(width), v.BINDING_OP)
    if op == "/":
        width = None if left_width is None else left_width + (1 if both_signed else 0)
        return v.HwValue(ir.DoPrim("div", (left.expr, right.expr)), numeric_type(width), v.BINDING_OP)
    if op == "%":
        width = None if left_width is None or right_width is None else min(left_width, right_width)
        return v.HwValue(ir.DoPrim("rem", (left.expr, right.expr)), numeric_type(width), v.BINDING_OP)
    if op in ("&", "|", "^"):
        prim = {"&": "and", "|": "or", "^": "xor"}[op]
        result_type: v.HwType
        if isinstance(left_type, v.BoolT) and isinstance(right_type, v.BoolT):
            result_type = v.BoolT()
        else:
            result_type = v.UIntT(max_width)
        return v.HwValue(ir.DoPrim(prim, (left.expr, right.expr)), result_type, v.BINDING_OP)
    if op == "##":
        width = None if left_width is None or right_width is None else left_width + right_width
        return v.HwValue(ir.DoPrim("cat", (left.expr, right.expr)), v.UIntT(width), v.BINDING_OP)
    if op == "<<":
        width = None if left_width is None or right_width is None else left_width + min((1 << right_width) - 1, 64)
        return v.HwValue(ir.DoPrim("dshl", (left.expr, right.expr)), numeric_type(width), v.BINDING_OP)
    if op == ">>":
        return v.HwValue(ir.DoPrim("dshr", (left.expr, right.expr)), numeric_type(left_width), v.BINDING_OP)
    raise ChiselError.at(
        f"value {op} is not a member of {left_type.chisel_name()}", location, code="A1"
    )


def unary_op(elab, op: str, operand: object, location: SourceLocation) -> object:
    if isinstance(operand, (v.HwType, v.Directed)):
        raise ChiselError.at(
            f"{v.describe_value(operand)} must be hardware, not a bare Chisel type. "
            "Perhaps you forgot to wrap it in Wire(_) or IO(_)?",
            location,
            code="B2",
        )
    if isinstance(operand, v.HwValue):
        width = _type_width(operand.tpe)
        if op == "~":
            if isinstance(operand.tpe, v.ClockT):
                raise ChiselError.at(
                    "value unary_~ is not a member of chisel3.Clock; convert with asUInt",
                    location,
                    code="B6",
                )
            result_type = v.BoolT() if isinstance(operand.tpe, v.BoolT) else v.UIntT(width)
            return v.HwValue(ir.DoPrim("not", (operand.expr,)), result_type, v.BINDING_OP)
        if op == "!":
            if not isinstance(operand.tpe, v.BoolT) and width not in (1, None):
                raise ChiselError.at(
                    f"type mismatch;\n found   : {operand.type_name()}\n required: chisel3.Bool\n"
                    "unary ! is only defined on Bool",
                    location,
                    code="B5",
                )
            return v.HwValue(ir.DoPrim("not", (operand.expr,)), v.BoolT(), v.BINDING_OP)
        if op == "-":
            if isinstance(operand.tpe, v.SIntT):
                new_width = None if width is None else width + 1
                return v.HwValue(ir.DoPrim("neg", (operand.expr,)), v.SIntT(new_width), v.BINDING_OP)
            zero = ir.UIntLiteral(0, width)
            return v.HwValue(ir.DoPrim("subw", (zero, operand.expr)), v.UIntT(width), v.BINDING_OP)
        raise ChiselError.at(f"unsupported unary operator {op}", location, code="PARSE")
    if op == "-":
        return -operand
    if op == "!":
        return not operand
    if op == "~":
        return ~operand
    raise ChiselError.at(f"unsupported unary operator {op}", location, code="PARSE")
