"""Lexer for the Chisel/Scala subset.

Produces a flat token stream; the parser is newline-sensitive (Scala statement
separation), so NEWLINE tokens are emitted for line breaks that can terminate
a statement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.chisel.diagnostics import ChiselError, SourceLocation


class TokenKind(enum.Enum):
    IDENT = "ident"
    INTEGER = "integer"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    KEYWORD = "keyword"
    NEWLINE = "newline"
    EOF = "eof"


KEYWORDS = {
    "class",
    "object",
    "extends",
    "with",
    "val",
    "var",
    "def",
    "new",
    "if",
    "else",
    "for",
    "while",
    "yield",
    "import",
    "package",
    "true",
    "false",
    "null",
    "override",
    "private",
    "protected",
    "implicit",
    "lazy",
    "case",
    "match",
    "return",
}

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<->",
    "<>",
    "===",
    "=/=",
    ":=",
    "=>",
    "<-",
    "->",
    "+&",
    "-&",
    "+%",
    "-%",
    "+=",
    "-=",
    "*=",
    "/=",
    "&=",
    "|=",
    "^=",
    "##",
    "==",
    "!=",
    "<=",
    ">=",
    "<<",
    ">>",
    "&&",
    "||",
    "=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "&",
    "|",
    "^",
    "~",
    "!",
    "_",
]

_PUNCT = "(){}[].,:;@"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    location: SourceLocation

    def is_op(self, *ops: str) -> bool:
        return self.kind is TokenKind.OPERATOR and self.text in ops

    def is_punct(self, *puncts: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text in puncts

    def is_keyword(self, *words: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in words

    def is_ident(self, *names: str) -> bool:
        if self.kind is not TokenKind.IDENT:
            return False
        return not names or self.text in names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.value}, {self.text!r}, {self.location})"


class Lexer:
    """Tokenise Chisel/Scala source text."""

    def __init__(self, source: str, file: str = "Main.scala"):
        self.source = source
        self.file = file
        self.pos = 0
        self.line = 1
        self.column = 1

    def _location(self) -> SourceLocation:
        return SourceLocation(self.line, self.column, self.file)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= len(self.source):
            return ""
        return self.source[index]

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while self.pos < len(self.source):
            ch = self._peek()
            if ch == "\n":
                loc = self._location()
                self._advance()
                if tokens and tokens[-1].kind is not TokenKind.NEWLINE:
                    tokens.append(Token(TokenKind.NEWLINE, "\n", loc))
                continue
            if ch in " \t\r":
                self._advance()
                continue
            if ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
                continue
            if ch == "/" and self._peek(1) == "*":
                self._lex_block_comment()
                continue
            if ch == '"':
                tokens.append(self._lex_string())
                continue
            if ch.isdigit():
                tokens.append(self._lex_number())
                continue
            if ch.isalpha() or ch == "_" or ch == "$":
                tokens.append(self._lex_ident())
                continue
            op = self._match_operator()
            if op is not None:
                tokens.append(op)
                continue
            if ch in _PUNCT:
                loc = self._location()
                self._advance()
                tokens.append(Token(TokenKind.PUNCT, ch, loc))
                continue
            raise ChiselError.at(
                f"illegal character {ch!r} in source", self._location(), code="LEX"
            )
        tokens.append(Token(TokenKind.EOF, "", self._location()))
        return tokens

    def _lex_block_comment(self) -> None:
        start = self._location()
        self._advance(2)
        while self.pos < len(self.source):
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance(2)
                return
            self._advance()
        raise ChiselError.at("unterminated block comment", start, code="LEX")

    def _lex_string(self) -> Token:
        loc = self._location()
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            ch = self._peek()
            if ch == "":
                raise ChiselError.at("unterminated string literal", loc, code="LEX")
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                escaped = self._advance()
                mapping = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                chars.append(mapping.get(escaped, escaped))
                continue
            chars.append(self._advance())
        return Token(TokenKind.STRING, "".join(chars), loc)

    def _lex_number(self) -> Token:
        loc = self._location()
        chars: list[str] = []
        if self._peek() == "0" and self._peek(1) in "xX":
            chars.append(self._advance())
            chars.append(self._advance())
            while self._peek() and (self._peek() in "0123456789abcdefABCDEF_"):
                chars.append(self._advance())
        else:
            while self._peek() and (self._peek().isdigit() or self._peek() == "_"):
                chars.append(self._advance())
        return Token(TokenKind.INTEGER, "".join(chars), loc)

    def _lex_ident(self) -> Token:
        loc = self._location()
        chars: list[str] = []
        while self._peek() and (self._peek().isalnum() or self._peek() in "_$"):
            chars.append(self._advance())
        text = "".join(chars)
        if text == "_":
            return Token(TokenKind.OPERATOR, "_", loc)
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, loc)

    def _match_operator(self) -> Token | None:
        loc = self._location()
        for op in _OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token(TokenKind.OPERATOR, op, loc)
        return None


def tokenize(source: str, file: str = "Main.scala") -> list[Token]:
    """Convenience wrapper returning the token list for ``source``."""
    return Lexer(source, file).tokenize()
