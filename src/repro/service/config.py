"""Configuration for the async generation service.

Every knob is also settable from the environment (``REPRO_SERVICE_*``), so
deployments tune the service without code changes; see EXPERIMENTS.md for
the catalogue.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.experiments.config import RESULT_STORE_ENV, _DISABLED_STORE_VALUES
from repro.llm.dispatch import RetryPolicy

BATCH_WINDOW_ENV = "REPRO_SERVICE_BATCH_WINDOW"
MAX_INFLIGHT_ENV = "REPRO_SERVICE_MAX_INFLIGHT"
RATE_LIMIT_ENV = "REPRO_SERVICE_RATE_LIMIT"
MAX_BATCH_ENV = "REPRO_SERVICE_MAX_BATCH"
QUEUE_LIMIT_ENV = "REPRO_SERVICE_QUEUE_LIMIT"
TOOL_WORKERS_ENV = "REPRO_SERVICE_TOOL_WORKERS"
FLEET_WORKERS_ENV = "REPRO_SERVICE_FLEET_WORKERS"
REQUEST_TIMEOUT_ENV = "REPRO_SERVICE_REQUEST_TIMEOUT"
SIM_BATCH_WINDOW_ENV = "REPRO_SERVICE_SIM_BATCH_WINDOW"
SIM_MAX_BATCH_ENV = "REPRO_SERVICE_SIM_MAX_BATCH"
DRAIN_TIMEOUT_ENV = "REPRO_SERVICE_DRAIN_TIMEOUT"


def _env_float(name: str) -> float | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None


def _env_int(name: str) -> int | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


@dataclass
class ServiceConfig:
    """Knobs of the :class:`~repro.service.service.GenerationService`.

    ``max_in_flight`` bounds concurrently executing sessions (the worker
    count); ``queue_limit`` bounds the job queue — ``submit`` awaits when it
    is full, which is the service's backpressure.  ``batch_window`` /
    ``max_batch`` / ``rate_limit`` / ``per_profile_limit`` parameterize the
    :class:`~repro.llm.dispatch.BatchingDispatcher`; ``tool_workers`` sizes
    the bounded executor that compile/simulate steps are offloaded to.
    ``store_path`` points the result cache at a persistent
    :class:`~repro.experiments.store.ResultStore` shared with the sweep
    engine, so specs already swept are served without any LLM traffic;
    ``memo_size`` bounds the in-process payload memo in front of it.

    ``fleet_workers`` > 0 routes unit execution through a supervised
    :class:`~repro.fleet.supervisor.FleetSupervisor` of that many worker
    processes (crash isolation: a unit that takes a worker down no longer
    takes the service event loop with it); 0 keeps the in-process path.
    ``request_timeout`` bounds each LLM dispatch attempt in seconds
    (``None`` disables the bound); timed-out attempts are retried like
    transport errors and counted in ``DispatchStats.timeouts``.

    ``sim_batch_window`` / ``sim_max_batch`` parameterize simulate-call
    micro-batching: simulate tool steps from concurrent sessions collect for
    up to ``sim_batch_window`` seconds (or until ``sim_max_batch`` are
    pending) and run as one :meth:`Simulator.simulate_many` batch, which
    coalesces structurally-identical candidates onto shared vector kernels.
    ``sim_max_batch <= 1`` disables batching (each simulate runs alone).

    ``drain_timeout`` bounds how long ``close(drain=True)`` waits for
    in-flight and queued jobs to finish before tearing the service down
    anyway (graceful shutdown with a hard edge).

    ``breaker`` optionally installs a :class:`repro.retry.CircuitBreaker`
    around the dispatcher's transport attempts (build one with
    ``CircuitBreaker.from_environment()``), and ``llm_budget`` any object
    with ``charge(n)`` — e.g. a campaign's :class:`repro.campaign.Budget` —
    charged once per LLM request; both default off.
    """

    max_in_flight: int = 32
    queue_limit: int = 128
    batch_window: float = 0.0
    max_batch: int = 16
    rate_limit: float | None = None
    per_profile_limit: int | None = None
    tool_workers: int = 1
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    store_path: str | None = None
    memo_size: int = 8192
    fleet_workers: int = 0
    request_timeout: float | None = None
    sim_batch_window: float = 0.0
    sim_max_batch: int = 16
    drain_timeout: float = 30.0
    breaker: object | None = None
    llm_budget: object | None = None

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.tool_workers < 1:
            raise ValueError("tool_workers must be >= 1")
        if self.fleet_workers < 0:
            raise ValueError("fleet_workers must be >= 0")
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValueError("request_timeout must be > 0 or None")
        if self.sim_batch_window < 0:
            raise ValueError("sim_batch_window must be >= 0")
        if self.drain_timeout < 0:
            raise ValueError("drain_timeout must be >= 0")

    @classmethod
    def from_environment(cls) -> "ServiceConfig":
        config = cls()
        batch_window = _env_float(BATCH_WINDOW_ENV)
        if batch_window is not None:
            config.batch_window = max(0.0, batch_window)
        max_in_flight = _env_int(MAX_INFLIGHT_ENV)
        if max_in_flight is not None:
            config.max_in_flight = max(1, max_in_flight)
        rate_limit = _env_float(RATE_LIMIT_ENV)
        if rate_limit is not None:
            config.rate_limit = rate_limit if rate_limit > 0 else None
        max_batch = _env_int(MAX_BATCH_ENV)
        if max_batch is not None:
            config.max_batch = max(1, max_batch)
        queue_limit = _env_int(QUEUE_LIMIT_ENV)
        if queue_limit is not None:
            config.queue_limit = max(1, queue_limit)
        tool_workers = _env_int(TOOL_WORKERS_ENV)
        if tool_workers is not None:
            config.tool_workers = max(1, tool_workers)
        fleet_workers = _env_int(FLEET_WORKERS_ENV)
        if fleet_workers is not None:
            config.fleet_workers = max(0, fleet_workers)
        request_timeout = _env_float(REQUEST_TIMEOUT_ENV)
        if request_timeout is not None:
            config.request_timeout = request_timeout if request_timeout > 0 else None
        sim_batch_window = _env_float(SIM_BATCH_WINDOW_ENV)
        if sim_batch_window is not None:
            config.sim_batch_window = max(0.0, sim_batch_window)
        sim_max_batch = _env_int(SIM_MAX_BATCH_ENV)
        if sim_max_batch is not None:
            config.sim_max_batch = sim_max_batch
        drain_timeout = _env_float(DRAIN_TIMEOUT_ENV)
        if drain_timeout is not None:
            config.drain_timeout = max(0.0, drain_timeout)
        store_raw = os.environ.get(RESULT_STORE_ENV, "").strip()
        if store_raw.lower() not in _DISABLED_STORE_VALUES:
            config.store_path = store_raw
        return config
