"""The async generation service: hundreds of concurrent sessions, one loop.

:class:`GenerationService` accepts :class:`~repro.experiments.work.WorkUnit`
jobs (the same unit type the sweep engine executes) and runs each as a
step-wise session (see :mod:`repro.core.session`) on one asyncio event loop:

* **LLM steps** go through the :class:`~repro.llm.dispatch.BatchingDispatcher`
  — concurrent sessions' requests coalesce into micro-batches under a token
  bucket, per-profile caps and jittered retry;
* **tool steps** (compile / simulate / parse) are offloaded to a bounded
  thread executor so the loop stays responsive for dispatch timers; simulate
  steps additionally micro-batch through a :class:`_SimulationBatcher`
  (``sim_batch_window`` / ``sim_max_batch``) so structurally-identical
  candidates from concurrent sessions share vector-kernel lanes;
* **scheduling** is fair FIFO: a bounded job queue feeds ``max_in_flight``
  worker tasks, and ``submit`` awaits whenever the queue is full
  (backpressure);
* **caching** reuses the sweep engine's content fingerprints: results are
  memoized in-process, served from a persistent
  :class:`~repro.experiments.store.ResultStore` when one is configured, and
  duplicate in-flight specs coalesce onto a single execution — repeat specs
  cost zero LLM calls;
* **crash isolation** (``fleet_workers > 0``) executes units on a supervised
  :class:`~repro.fleet.supervisor.FleetSupervisor` of worker processes
  instead of in-process sessions: a unit that crashes or wedges its worker
  is re-queued onto a restarted one and never takes the event loop down.
  Fleet workers run their own deterministically seeded clients, so payloads
  stay bit-identical to the in-process path.

Every session owns its deterministically seeded client, so results are
bit-identical to blocking ``ReChisel.run`` / ``ZeroShotRunner.run`` /
``AutoChip.run`` at any concurrency level — ``tests/test_service.py``
asserts this for all three strategies.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence

from repro.caching import LruCache, cache_stats
from repro.campaign.scheduler import get_priority_gate
from repro.core.session import LLMCall, Session
from repro.experiments.store import ResultStore
from repro.experiments.strategies import strategy_from_unit
from repro.experiments.work import WorkerContext, WorkUnit
from repro.llm.dispatch import BatchingDispatcher, TokenBucket
from repro.obs import EventBus, get_bus, span
from repro.problems.registry import ProblemRegistry
from repro.service.config import ServiceConfig
from repro.service.telemetry import ServiceSnapshot, Telemetry
from repro.toolchain.simulator import SimulateRequest


def _consume_exception(future: asyncio.Future) -> None:
    """Mark a barrier future's exception retrieved even with no waiters."""
    if not future.cancelled():
        future.exception()


class _SimulationBatcher:
    """Micro-batch simulate tool calls from concurrent sessions.

    Requests collect for up to ``window`` seconds (or until ``max_batch`` are
    pending) and run as one :meth:`Simulator.simulate_many` call on the tool
    executor, so structurally-identical candidates from different sessions
    share vector-kernel lanes.  Bit-identity with per-call ``simulate`` is
    guaranteed by ``run_testbenches``; if a batch fails wholesale, each
    request is retried individually so one poisoned DUT can't fail its
    batch-mates.
    """

    def __init__(
        self,
        loop,
        executor,
        telemetry: Telemetry,
        window: float,
        max_batch: int,
        bus: EventBus | None = None,
    ):
        self._loop = loop
        self._executor = executor
        self._telemetry = telemetry
        self._window = window
        self._max_batch = max_batch
        self._bus = bus
        self._pending: list[tuple[SimulateRequest, asyncio.Future]] = []
        self._timer: asyncio.TimerHandle | None = None

    async def simulate(self, request: SimulateRequest):
        future = self._loop.create_future()
        self._pending.append((request, future))
        if len(self._pending) >= self._max_batch:
            self._flush()
        elif self._timer is None:
            self._timer = self._loop.call_later(self._window, self._flush)
        return await future

    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        if batch:
            self._loop.create_task(self._run(batch))

    async def _run(self, batch: list[tuple[SimulateRequest, asyncio.Future]]) -> None:
        self._telemetry.record_sim_batch(len(batch))
        if self._bus is not None and self._bus.active:
            self._bus.publish("sim.batch", "flush", size=len(batch))
        try:
            outcomes = await self._loop.run_in_executor(
                self._executor, _SimulationBatcher._execute, [r for r, _ in batch]
            )
            for (_request, future), outcome in zip(batch, outcomes):
                if not future.done():
                    future.set_result(outcome)
        except Exception:
            # Degrade to per-request execution; individual failures then land
            # on their own futures.
            for request, future in batch:
                if future.done():
                    continue
                try:
                    outcome = await self._loop.run_in_executor(self._executor, request.run)
                except Exception as exc:
                    future.set_exception(exc)
                else:
                    future.set_result(outcome)

    @staticmethod
    def _execute(requests: list[SimulateRequest]):
        """Group by simulator facade and run each group as one batch."""
        outcomes: list[object | None] = [None] * len(requests)
        by_sim: dict[int, list[int]] = {}
        for index, request in enumerate(requests):
            by_sim.setdefault(id(request.simulator), []).append(index)
        for indices in by_sim.values():
            simulator = requests[indices[0]].simulator
            results = simulator.simulate_many(
                [
                    (requests[i].dut_verilog, requests[i].reference, requests[i].testbench)
                    for i in indices
                ]
            )
            for position, outcome in zip(indices, results):
                outcomes[position] = outcome
        return outcomes

    def close(self) -> None:
        """Fail anything still pending (service shutdown)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        for _request, future in batch:
            if not future.done():
                future.set_exception(
                    RuntimeError("generation service closed while a simulation was pending")
                )


class GenerationService:
    """Concurrent ReChisel/zero-shot/AutoChip serving with batched LLM dispatch.

    Use as an async context manager (or call :meth:`start` / :meth:`close`)::

        async with GenerationService(ServiceConfig(max_in_flight=64)) as service:
            payloads = await service.run(units)

    ``client_factory`` builds the per-job chat client; it defaults to the
    worker context's seeded synthetic client and is the hook for plugging in
    real API clients (wrap blocking ones in
    :class:`~repro.llm.dispatch.SyncClientAdapter` with an executor).
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        context: WorkerContext | None = None,
        registry: ProblemRegistry | None = None,
        store: ResultStore | None = None,
        dispatcher: BatchingDispatcher | None = None,
        client_factory: Callable[[WorkUnit], object] | None = None,
        bus: EventBus | None = None,
    ):
        self.config = config or ServiceConfig()
        # The structured event bus this service publishes to (job lifecycle,
        # session/LLM/tool/simulate spans, snapshots).  Publishing is a no-op
        # until something subscribes, so it is always safe to leave attached.
        self.bus = bus if bus is not None else get_bus()
        self._last_stats_publish = 0.0
        self.context = context or WorkerContext(registry=registry)
        if store is None and self.config.store_path:
            store = ResultStore(self.config.store_path)
            self._owns_store = True
        else:
            self._owns_store = False
        self.store = store
        self.telemetry = Telemetry()
        self._dispatcher_override = dispatcher
        self._client_factory = client_factory or self.context.client_for
        self.dispatcher: BatchingDispatcher | None = None
        self._queue: asyncio.Queue | None = None
        self._workers: list[asyncio.Task] = []
        self._tools: ThreadPoolExecutor | None = None
        # Bounded: a long-lived service streaming mostly-unique specs must not
        # accumulate payloads forever; the persistent store is the durable tier.
        self._memo: LruCache[dict] = LruCache(self.config.memo_size)
        self._inflight: dict[str, asyncio.Future] = {}
        # Futures of jobs a worker has dequeued but not yet resolved; swept at
        # close so a dying worker can never strand its submitter.
        self._active: dict[int, asyncio.Future] = {}
        self._fleet = None  # FleetSupervisor when config.fleet_workers > 0
        self._fleet_health: dict = {}  # last health report, survives close()
        self._sim_batcher: _SimulationBatcher | None = None
        self._draining = False

    # -------------------------------------------------------------- lifecycle

    @property
    def started(self) -> bool:
        return bool(self._workers)

    async def start(self) -> "GenerationService":
        if self.started:
            return self
        loop = asyncio.get_running_loop()
        config = self.config
        self.dispatcher = self._dispatcher_override or BatchingDispatcher(
            batch_window=config.batch_window,
            max_batch=config.max_batch,
            rate_limiter=TokenBucket(config.rate_limit) if config.rate_limit else None,
            per_profile_limit=config.per_profile_limit,
            retry=config.retry,
            retry_seed=0,
            request_timeout=config.request_timeout,
            breaker=config.breaker,
            budget=config.llm_budget,
            bus=self.bus,
        )
        if config.fleet_workers > 0 and self._fleet is None:
            from repro.fleet import FleetConfig, FleetSupervisor

            fleet_config = FleetConfig.from_environment(
                FleetConfig(workers=config.fleet_workers)
            )
            self._fleet = FleetSupervisor(fleet_config, bus=self.bus)
            self._fleet.start()
        self._queue = asyncio.Queue(maxsize=config.queue_limit)
        self._tools = ThreadPoolExecutor(
            max_workers=config.tool_workers, thread_name_prefix="repro-svc-tool"
        )
        if config.sim_max_batch > 1:
            self._sim_batcher = _SimulationBatcher(
                loop,
                self._tools,
                self.telemetry,
                config.sim_batch_window,
                config.sim_max_batch,
                bus=self.bus,
            )
        self._workers = [loop.create_task(self._worker()) for _ in range(config.max_in_flight)]
        return self

    async def close(self, drain: bool = False) -> None:
        """Tear the service down; ``drain=True`` finishes in-flight work first.

        Draining stops ``submit`` from accepting new jobs, then waits (up to
        ``config.drain_timeout`` seconds) for every queued and in-flight job
        to resolve before the normal teardown — so a graceful shutdown never
        strands a submitter and never abandons work it already accepted.
        """
        if drain and self.started:
            self._draining = True
            try:
                await asyncio.wait_for(
                    self._queue.join(), timeout=self.config.drain_timeout or None
                )
            except asyncio.TimeoutError:
                pass
            if self.bus.active:
                self.bus.publish(
                    "service.job",
                    "drained",
                    pending=self._queue.qsize() if self._queue is not None else 0,
                    in_flight=self.telemetry.in_flight,
                )
        for worker in self._workers:
            worker.cancel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        # A worker that died between dequeuing a job and resolving its future
        # (cancelled at an interior await, or killed by a non-Exception) left
        # that future in _active; fail it so the submitter wakes up.
        for future in list(self._active.values()):
            if not future.done():
                future.set_exception(
                    RuntimeError("generation service closed while the job was in flight")
                )
        self._active.clear()
        if self._queue is not None:
            await self._fail_queued_jobs()
        if self._fleet is not None:
            self._fleet_health = self._fleet.health()
            self._fleet.close()
            self._fleet = None
        if self._sim_batcher is not None:
            self._sim_batcher.close()
            self._sim_batcher = None
        if self._tools is not None:
            self._tools.shutdown(wait=True)
            self._tools = None
        self._queue = None
        self._draining = False
        if self._owns_store and self.store is not None:
            self.store.close()

    async def _fail_queued_jobs(self) -> None:
        """Fail jobs still queued at close so their submitters don't hang.

        Draining frees queue slots, which wakes submitters blocked on a full
        queue; the loop keeps yielding to them until a full pass finds the
        queue empty, so every orphaned job's future resolves.
        """
        while True:
            drained = False
            while not self._queue.empty():
                _unit, future = self._queue.get_nowait()
                if not future.done():
                    future.set_exception(
                        RuntimeError("generation service closed before the job ran")
                    )
                self._queue.task_done()
                drained = True
            await asyncio.sleep(0)
            if not drained and self._queue.empty():
                return

    async def __aenter__(self) -> "GenerationService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------- jobs

    async def submit(self, unit: WorkUnit) -> dict:
        """Enqueue one job and await its payload (awaits when the queue is full)."""
        if not self.started:
            raise RuntimeError("service not started; use `async with service:` or await start()")
        if self._draining:
            raise RuntimeError("generation service is draining; not accepting new jobs")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self.telemetry.submitted += 1
        if self.bus.active:
            self.bus.publish(
                "service.job",
                "submitted",
                problem=unit.problem_id,
                strategy=unit.strategy,
                model=unit.model,
                sample=unit.sample,
            )
        await self._queue.put((unit, future))
        return await future

    async def run(self, units: Iterable[WorkUnit]) -> list[dict]:
        """Submit a batch of jobs and return their payloads in submission order."""
        units = list(units)
        if not self.started:
            async with self:
                return await asyncio.gather(*(self.submit(unit) for unit in units))
        return await asyncio.gather(*(self.submit(unit) for unit in units))

    def snapshot(self) -> ServiceSnapshot:
        """A consistent telemetry snapshot (queue depth, cache hits, p50/p95)."""
        return self.telemetry.snapshot(
            queue_depth=self._queue.qsize() if self._queue is not None else 0,
            dispatcher_stats=self.dispatcher.stats.snapshot() if self.dispatcher else None,
            fleet_health=self._fleet.health() if self._fleet is not None else self._fleet_health,
        )

    # ---------------------------------------------------------------- workers

    async def _worker(self) -> None:
        while True:
            unit, future = await self._queue.get()
            self._active[id(future)] = future
            try:
                payload = await self._execute(unit)
            except asyncio.CancelledError:
                if not future.done():
                    future.cancel()
                raise
            except Exception as exc:
                self.telemetry.failed += 1
                if self.bus.active:
                    self.bus.publish(
                        "service.job",
                        "failed",
                        problem=unit.problem_id,
                        strategy=unit.strategy,
                        error=type(exc).__name__,
                    )
                if not future.done():
                    future.set_exception(exc)
            except BaseException:
                # The worker task itself is dying (KeyboardInterrupt & co.);
                # resolve the job so its submitter isn't stranded, then let
                # the exception take the task down.
                self.telemetry.failed += 1
                if not future.done():
                    future.set_exception(RuntimeError("generation worker died mid-job"))
                raise
            else:
                self.telemetry.completed += 1
                if self.bus.active:
                    self.bus.publish(
                        "service.job",
                        "completed",
                        problem=unit.problem_id,
                        strategy=unit.strategy,
                        model=unit.model,
                        sample=unit.sample,
                    )
                    self._publish_snapshot()
                if not future.done():
                    future.set_result(payload)
            finally:
                # Leave unresolved futures registered: close() fails them.
                if future.done():
                    self._active.pop(id(future), None)
                self._queue.task_done()

    async def _execute(self, unit: WorkUnit) -> dict:
        loop = asyncio.get_running_loop()
        fingerprint = self.context.fingerprint(unit)

        payload = self._memo.get(fingerprint)
        if payload is not None:
            self.telemetry.memo_hits += 1
            self._publish_cache_hit("memo", unit)
            return payload
        if self.store is not None:
            payload = self.store.get(fingerprint)
            if payload is not None:
                self.telemetry.store_hits += 1
                self._publish_cache_hit("store", unit)
                self._memo.put(fingerprint, payload)
                return payload
        pending = self._inflight.get(fingerprint)
        if pending is not None:
            # The same spec is already executing: piggyback on its result
            # instead of spending duplicate LLM calls.
            self.telemetry.coalesced_hits += 1
            self._publish_cache_hit("coalesced", unit)
            return await pending

        barrier: asyncio.Future = loop.create_future()
        barrier.add_done_callback(_consume_exception)
        self._inflight[fingerprint] = barrier
        self.telemetry.in_flight += 1
        started = loop.time()
        # Real executions (not cache hits) mark the process-wide priority
        # gate: background campaigns park while interactive jobs run.
        gate = get_priority_gate()
        gate.interactive_begin()
        try:
            with span(
                "session",
                bus=self.bus,
                problem=unit.problem_id,
                strategy=unit.strategy,
                model=unit.model,
                sample=unit.sample,
                fingerprint=fingerprint[:12],
            ):
                if self._fleet is not None:
                    payload = await asyncio.wrap_future(self._fleet.submit(unit))
                else:
                    client = self._client_factory(unit)
                    session = strategy_from_unit(unit).session(self.context, unit, client)
                    payload = await self._drive(session, client, unit.model)
        except BaseException as exc:
            if not barrier.done():
                barrier.set_exception(exc)
            raise
        finally:
            gate.interactive_end()
            self.telemetry.in_flight -= 1
            self.telemetry.record_latency(loop.time() - started)
            del self._inflight[fingerprint]
        self._memo.put(fingerprint, payload)
        if self.store is not None:
            self.store.put(fingerprint, unit, payload)
        if not barrier.done():
            barrier.set_result(payload)
        return payload

    async def _drive(self, session: Session, client, profile: str) -> dict:
        """Answer a session's steps: LLM via the dispatcher, tools via the executor.

        Each step runs inside a child span of the session span (``llm.<purpose>``
        or ``tool.<purpose>``), so one session's timeline reconstructs into a
        parent/child tree covering its LLM, tool and simulate steps.
        """
        loop = asyncio.get_running_loop()
        bus = self.bus
        try:
            step = next(session)
            while True:
                self.telemetry.steps.record(step)
                if isinstance(step, LLMCall):
                    with span("llm." + step.purpose, bus=bus):
                        value = await self.dispatcher.complete(
                            step.messages, client=client, profile=profile
                        )
                elif self._sim_batcher is not None and isinstance(
                    getattr(step, "batch", None), SimulateRequest
                ):
                    with span("tool." + step.purpose, bus=bus, batched=True):
                        value = await self._sim_batcher.simulate(step.batch)
                else:
                    with span("tool." + step.purpose, bus=bus):
                        value = await loop.run_in_executor(self._tools, step.run)
                step = session.send(value)
        except StopIteration as stop:
            return stop.value

    # ------------------------------------------------------------- bus output

    def _publish_cache_hit(self, tier: str, unit: WorkUnit) -> None:
        if self.bus.active:
            self.bus.publish(
                "service.job",
                "cache-hit",
                tier=tier,
                problem=unit.problem_id,
                strategy=unit.strategy,
                model=unit.model,
                sample=unit.sample,
            )

    def _publish_snapshot(self) -> None:
        """Emit ``service.snapshot`` + ``cache.stats`` (throttled) events.

        Called after each completed job while subscribers are attached; the
        cache-stats walk is throttled so a burst of completions costs one
        registry scan per interval, not one per job.
        """
        bus = self.bus
        bus.publish(
            "service.snapshot",
            "update",
            queue_depth=self._queue.qsize() if self._queue is not None else 0,
            in_flight=self.telemetry.in_flight,
            submitted=self.telemetry.submitted,
            completed=self.telemetry.completed,
            failed=self.telemetry.failed,
            llm_calls=self.telemetry.steps.llm_calls,
            tool_calls=self.telemetry.steps.tool_calls,
        )
        now = time.monotonic()
        if now - self._last_stats_publish >= 0.25:
            self._last_stats_publish = now
            bus.publish("cache.stats", "snapshot", caches=cache_stats())
            if self._fleet is not None:
                bus.publish("fleet", "health", **self._fleet.health())


def serve_units(
    units: Sequence[WorkUnit],
    config: ServiceConfig | None = None,
    **kwargs,
) -> tuple[list[dict], ServiceSnapshot]:
    """Blocking convenience: run ``units`` through a fresh service.

    Spins up an event loop, serves every unit, and returns the payloads (in
    submission order) together with the final telemetry snapshot.
    """

    async def _main() -> tuple[list[dict], ServiceSnapshot]:
        service = GenerationService(config, **kwargs)
        async with service:
            payloads = await asyncio.gather(*(service.submit(unit) for unit in units))
        return list(payloads), service.snapshot()

    return asyncio.run(_main())
