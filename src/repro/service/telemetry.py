"""Service telemetry: counters, latency percentiles, one-call snapshots.

All counters are mutated from the event loop only, so no locking is needed;
the latency reservoir is a bounded deque holding the most recent session
latencies (enough for stable p50/p95 without unbounded growth).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.caching import cache_stats
from repro.core.session import StepCounts


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``samples``, linearly interpolated.

    Matches numpy's default (``method='linear'``): the quantile position is
    ``q * (n - 1)`` and values between ranks are interpolated, so small
    reservoirs give smooth, deterministic estimates instead of the coarse
    stair-steps of nearest-rank (with 4 samples, nearest-rank p50 and p75
    were identical).
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    position = min(max(q, 0.0), 1.0) * (len(ordered) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return ordered[lower]
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


@dataclass
class ServiceSnapshot:
    """One consistent view of the service's state and history."""

    queue_depth: int
    in_flight: int
    submitted: int
    completed: int
    failed: int
    memo_hits: int
    store_hits: int
    coalesced_hits: int
    llm_calls: int
    tool_calls: int
    p50_latency: float
    p95_latency: float
    p99_latency: float = 0.0
    max_latency: float = 0.0
    dispatcher: dict = field(default_factory=dict)
    # Toolchain cache counters (repro.caching.cache_stats()): parse,
    # elaborate, compile, pass-pipeline, emit, kernel and trace caches.
    caches: dict = field(default_factory=dict)
    # Worker-health report from the generation fleet's supervisor
    # (FleetSupervisor.health()); empty when the service runs in-process.
    fleet: dict = field(default_factory=dict)
    # Simulate-call micro-batching (0 everywhere when sim_max_batch <= 1).
    sim_batches: int = 0
    sim_batched_requests: int = 0
    max_sim_batch: int = 0

    @property
    def cache_hits(self) -> int:
        return self.memo_hits + self.store_hits + self.coalesced_hits

    def render(self) -> str:
        lines = [
            f"queue depth      {self.queue_depth}",
            f"in flight        {self.in_flight}",
            f"submitted        {self.submitted}",
            f"completed        {self.completed}  (failed {self.failed})",
            (
                f"cache hits       {self.cache_hits}  "
                f"(memo {self.memo_hits}, store {self.store_hits}, coalesced {self.coalesced_hits})"
            ),
            f"llm calls        {self.llm_calls}",
            f"tool calls       {self.tool_calls}",
            (
                f"session latency  p50 {self.p50_latency * 1000:.1f} ms / "
                f"p95 {self.p95_latency * 1000:.1f} ms / "
                f"p99 {self.p99_latency * 1000:.1f} ms / "
                f"max {self.max_latency * 1000:.1f} ms"
            ),
        ]
        if self.sim_batches:
            mean = self.sim_batched_requests / self.sim_batches
            lines.append(
                "sim batches      "
                f"{self.sim_batched_requests} simulations in {self.sim_batches} batches "
                f"(mean {mean:.1f}, max {self.max_sim_batch})"
            )
        if self.dispatcher:
            lines.append(
                "dispatch         "
                f"{self.dispatcher.get('requests', 0)} requests in "
                f"{self.dispatcher.get('batches', 0)} batches "
                f"(mean {self.dispatcher.get('mean_batch_size', 0.0)}, "
                f"max {self.dispatcher.get('max_batch_size', 0)}; "
                f"retries {self.dispatcher.get('retries', 0)}, "
                f"timeouts {self.dispatcher.get('timeouts', 0)})"
            )
        if self.caches:
            parts = [
                f"{name} {counters['hits']}/{counters['hits'] + counters['misses']}"
                for name, counters in sorted(self.caches.items())
            ]
            lines.append("toolchain caches (hits/lookups)  " + ", ".join(parts))
        if self.fleet:
            workers = self.fleet.get("workers", [])
            counters = self.fleet.get("counters", {})
            state = "DEGRADED (in-process)" if self.fleet.get("degraded") else "supervised"
            lines.append(
                "fleet            "
                f"{self.fleet.get('alive', 0)}/{len(workers)} workers alive ({state}); "
                f"restarts {counters.get('restarts', 0)}, "
                f"requeues {counters.get('requeues', 0)}, "
                f"evictions {counters.get('evictions', 0)}"
            )
        return "\n".join(lines)


class Telemetry:
    """Cumulative service accounting; see :class:`ServiceSnapshot`."""

    def __init__(self, latency_window: int = 4096):
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.memo_hits = 0
        self.store_hits = 0
        self.coalesced_hits = 0
        self.in_flight = 0
        self.sim_batches = 0
        self.sim_batched_requests = 0
        self.max_sim_batch = 0
        self.steps = StepCounts()
        self._latencies: deque[float] = deque(maxlen=latency_window)

    def record_sim_batch(self, size: int) -> None:
        self.sim_batches += 1
        self.sim_batched_requests += size
        self.max_sim_batch = max(self.max_sim_batch, size)

    def record_latency(self, seconds: float) -> None:
        self._latencies.append(seconds)

    def snapshot(
        self,
        queue_depth: int = 0,
        dispatcher_stats: dict | None = None,
        fleet_health: dict | None = None,
    ) -> ServiceSnapshot:
        samples = list(self._latencies)
        return ServiceSnapshot(
            queue_depth=queue_depth,
            in_flight=self.in_flight,
            submitted=self.submitted,
            completed=self.completed,
            failed=self.failed,
            memo_hits=self.memo_hits,
            store_hits=self.store_hits,
            coalesced_hits=self.coalesced_hits,
            llm_calls=self.steps.llm_calls,
            tool_calls=self.steps.tool_calls,
            p50_latency=percentile(samples, 0.50),
            p95_latency=percentile(samples, 0.95),
            p99_latency=percentile(samples, 0.99),
            max_latency=max(samples) if samples else 0.0,
            dispatcher=dict(dispatcher_stats or {}),
            caches=cache_stats(),
            fleet=dict(fleet_health or {}),
            sim_batches=self.sim_batches,
            sim_batched_requests=self.sim_batched_requests,
            max_sim_batch=self.max_sim_batch,
        )
