"""Async generation service: concurrent sessions over batched LLM dispatch.

See :mod:`repro.service.service` for the architecture overview, README
"Generation service" for the quickstart, and EXPERIMENTS.md for the
``REPRO_SERVICE_*`` environment knobs.
"""

from repro.service.config import ServiceConfig
from repro.service.service import GenerationService, serve_units
from repro.service.telemetry import ServiceSnapshot, Telemetry

__all__ = [
    "GenerationService",
    "ServiceConfig",
    "ServiceSnapshot",
    "Telemetry",
    "serve_units",
]
