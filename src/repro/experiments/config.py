"""Experiment configuration: paper-scale vs quick-scale evaluation."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.llm.profiles import AUTOCHIP_MODELS, PAPER_MODELS

FULL_EVAL_ENV = "REPRO_FULL_EVAL"


@dataclass
class ExperimentConfig:
    """Knobs shared by every experiment runner.

    The paper evaluates 216 cases x 10 samples x 5 models with up to 10
    reflection iterations.  That scale runs in tens of minutes on a laptop
    with this pure-Python toolchain, so the default configuration used by the
    benchmark suite is a scaled-down subset; set the ``REPRO_FULL_EVAL=1``
    environment variable (or call :meth:`paper_scale`) to reproduce the full
    runs, as recorded in EXPERIMENTS.md.
    """

    samples_per_case: int = 10
    max_iterations: int = 10
    max_cases: int | None = None
    models: tuple[str, ...] = PAPER_MODELS
    autochip_models: tuple[str, ...] = AUTOCHIP_MODELS
    seed: int = 0

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        return cls()

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """A fast configuration for smoke tests and pytest-benchmark runs."""
        return cls(samples_per_case=2, max_iterations=10, max_cases=36)

    @classmethod
    def from_environment(cls) -> "ExperimentConfig":
        if os.environ.get(FULL_EVAL_ENV, "").strip() in ("1", "true", "yes"):
            return cls.paper_scale()
        return cls.quick()
