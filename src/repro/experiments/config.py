"""Experiment configuration: paper-scale vs quick-scale evaluation."""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.llm.profiles import AUTOCHIP_MODELS, PAPER_MODELS

FULL_EVAL_ENV = "REPRO_FULL_EVAL"
JOBS_ENV = "REPRO_JOBS"
RESULT_STORE_ENV = "REPRO_RESULT_STORE"
FLEET_ENV = "REPRO_FLEET"
LOCKSTEP_ENV = "REPRO_LOCKSTEP"

_DISABLED_STORE_VALUES = ("", "0", "off", "no", "none", "false")


@dataclass
class ExperimentConfig:
    """Knobs shared by every experiment runner.

    The paper evaluates 216 cases x 10 samples x 5 models with up to 10
    reflection iterations.  That scale runs in tens of minutes on a laptop
    with this pure-Python toolchain, so the default configuration used by the
    benchmark suite is a scaled-down subset; set the ``REPRO_FULL_EVAL=1``
    environment variable (or call :meth:`paper_scale`) to reproduce the full
    runs, as recorded in EXPERIMENTS.md.

    ``jobs`` selects the sweep executor: 1 runs every work unit in-process,
    >1 fans units out over a process pool (``REPRO_JOBS``); results are
    bit-identical either way.  ``fleet`` (``REPRO_FLEET=1``) upgrades the
    parallel path to the supervised :mod:`repro.fleet` — warm restartable
    workers with crash detection, lease re-queueing and graceful degradation
    — still bit-identical.  ``lockstep`` (``REPRO_LOCKSTEP=1``) swaps the
    serial executor for the in-process
    :class:`~repro.experiments.executors.LockstepExecutor`, which drives all
    unit sessions together and coalesces their simulate calls into vectorized
    batches (bit-identical again; ignored when ``jobs > 1``).  ``store_path``
    points the engine at a persistent
    segmented result store (``REPRO_RESULT_STORE``) so repeated and
    overlapping sweeps reuse completed work units and interrupted runs
    resume; ``None`` disables persistence (in-process memoization across
    sweeps still applies).  See EXPERIMENTS.md for the store format.
    """

    samples_per_case: int = 10
    max_iterations: int = 10
    max_cases: int | None = None
    models: tuple[str, ...] = PAPER_MODELS
    autochip_models: tuple[str, ...] = AUTOCHIP_MODELS
    seed: int = 0
    jobs: int = 1
    store_path: str | None = None
    fleet: bool = False
    lockstep: bool = False

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        return cls()

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """A fast configuration for smoke tests and pytest-benchmark runs."""
        return cls(samples_per_case=2, max_iterations=10, max_cases=36)

    @classmethod
    def from_environment(cls) -> "ExperimentConfig":
        if os.environ.get(FULL_EVAL_ENV, "").strip() in ("1", "true", "yes"):
            config = cls.paper_scale()
        else:
            config = cls.quick()
        jobs_raw = os.environ.get(JOBS_ENV, "").strip()
        if jobs_raw:
            try:
                jobs = int(jobs_raw)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV} must be an integer worker count, got {jobs_raw!r}"
                ) from None
            config = replace(config, jobs=max(1, jobs))
        store_raw = os.environ.get(RESULT_STORE_ENV, "").strip()
        if store_raw.lower() not in _DISABLED_STORE_VALUES:
            config = replace(config, store_path=store_raw)
        if os.environ.get(FLEET_ENV, "").strip().lower() in ("1", "true", "yes", "on"):
            config = replace(config, fleet=True)
        if os.environ.get(LOCKSTEP_ENV, "").strip().lower() in ("1", "true", "yes", "on"):
            config = replace(config, lockstep=True)
        return config
