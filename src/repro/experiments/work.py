"""Work-unit decomposition for the sweep execution engine.

Every sweep the experiments run (zero-shot, ReChisel, AutoChip — any model,
any knob setting) decomposes into independent :class:`WorkUnit`\\ s, one per
(strategy, problem, sample).  A unit carries everything needed to execute it
deterministically in any process: the strategy name and knobs, the model, the
problem id, and the exact seed inputs.  Because units are independent and
self-seeding, executing them serially or across a process pool produces
bit-identical results.

:func:`unit_fingerprint` derives the content key used by the persistent
:class:`~repro.experiments.store.ResultStore`: it covers the strategy knobs,
the full calibrated model profile, the problem identity *and golden source
digest*, and the seed inputs — so recalibrating a model, editing a benchmark
problem, or changing any sweep knob invalidates exactly the affected units.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caching import stable_fingerprint, text_key
from repro.llm.profiles import MODEL_PROFILES
from repro.llm.synthetic import SyntheticChiselLLM
from repro.problems.base import Problem
from repro.problems.registry import ProblemRegistry, build_default_registry
from repro.toolchain.compiler import ChiselCompiler
from repro.toolchain.simulator import Simulator

#: Bump when the payload schema or execution semantics change; stored in every
#: result-store line and folded into every fingerprint, so stale stores are
#: ignored rather than misread.
PAYLOAD_VERSION = 1

STRATEGY_ZERO_SHOT = "zero_shot"
STRATEGY_RECHISEL = "rechisel"
STRATEGY_AUTOCHIP = "autochip"


@dataclass(frozen=True)
class WorkUnit:
    """One independently executable cell of a sweep.

    ``knobs`` is a canonical (sorted) tuple of ``(name, value)`` pairs owned
    by the strategy — e.g. ``(("language", "verilog"),)`` for zero-shot or the
    escape/knowledge/feedback settings for ReChisel.  Frozen and built from
    picklable primitives so units can cross process boundaries.
    """

    strategy: str
    model: str
    problem_id: str
    case_index: int
    sample: int
    seed: int
    max_iterations: int
    knobs: tuple[tuple[str, object], ...] = ()

    @property
    def client_seed(self) -> int:
        """The synthetic-LLM seed; matches the historical harness derivation."""
        return self.seed + 1000 * self.case_index + self.sample

    def knob(self, name: str, default: object = None) -> object:
        for key, value in self.knobs:
            if key == name:
                return value
        return default


def unit_fingerprint(unit: WorkUnit, golden_digest: str) -> str:
    """Content fingerprint of one work unit (the result-store key).

    ``golden_digest`` is a hash of the problem's golden Chisel source: the
    synthetic LLM derives both its fault space and its correct attempts from
    the golden solution, so editing a problem must invalidate its results.
    """
    document = {
        "version": PAYLOAD_VERSION,
        "strategy": unit.strategy,
        "model": unit.model,
        "profile": MODEL_PROFILES[unit.model].fingerprint(),
        "problem_id": unit.problem_id,
        "golden": golden_digest,
        "case_index": unit.case_index,
        "sample": unit.sample,
        "seed": unit.seed,
        "max_iterations": unit.max_iterations,
        "knobs": {name: value for name, value in unit.knobs},
    }
    return stable_fingerprint(document)


class WorkerContext:
    """Per-process execution state shared by every unit a worker runs.

    Built once per executor worker (and once for the serial path): the problem
    registry, a ``ChiselCompiler`` with a large memo (identical candidate code
    recurs constantly across samples/iterations), the parse-caching
    ``Simulator`` facade, and the golden-Verilog cache.  All of it is
    deterministic derived state — sharing it across units changes speed, never
    results.
    """

    def __init__(self, registry: ProblemRegistry | None = None, compile_cache_size: int = 1024):
        self.registry = registry or build_default_registry()
        self.compiler = ChiselCompiler(top="TopModule", cache_size=compile_cache_size)
        self.simulator = Simulator(top="TopModule")
        self.golden_verilog: dict[str, str] = {}
        self._golden_digests: dict[str, str] = {}

    def problem(self, problem_id: str) -> Problem:
        return self.registry.by_id(problem_id)

    def reference_verilog(self, problem: Problem) -> str:
        """Golden Verilog for one problem, compiled once per context."""
        if problem.problem_id not in self.golden_verilog:
            result = self.compiler.compile(problem.golden_chisel)
            if not result.success or result.verilog is None:
                raise RuntimeError(
                    f"golden solution for {problem.problem_id} failed to compile:\n"
                    f"{result.render_feedback()}"
                )
            self.golden_verilog[problem.problem_id] = result.verilog
        return self.golden_verilog[problem.problem_id]

    def golden_digest(self, problem_id: str) -> str:
        if problem_id not in self._golden_digests:
            self._golden_digests[problem_id] = text_key(self.problem(problem_id).golden_chisel)
        return self._golden_digests[problem_id]

    def fingerprint(self, unit: WorkUnit) -> str:
        return unit_fingerprint(unit, self.golden_digest(unit.problem_id))

    def client_for(self, unit: WorkUnit) -> SyntheticChiselLLM:
        """A fresh, deterministically seeded synthetic LLM for one unit."""
        return SyntheticChiselLLM(
            self.registry,
            MODEL_PROFILES[unit.model],
            seed=unit.client_seed,
            compiler=self.compiler,
            golden_verilog_cache=self.golden_verilog,
        )
