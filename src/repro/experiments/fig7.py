"""Fig. 7: syntax vs functional error proportions across reflection iterations.

The paper reports the mix for GPT-4o under Pass@1: at each iteration, what
fraction of all (case, sample) runs is still failing with a syntax error, and
what fraction with a functional error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import render_table
from repro.experiments.runner import EvaluationHarness, ReflectionCase
from repro.llm.profiles import GPT4O
from repro.metrics.errors import ErrorBreakdown, per_iteration_error_mix

# Paper's Fig. 7 series for GPT-4o (syntax %, functional %) per iteration 0..10.
PAPER_FIG7_SYNTAX = [54.9, 43.2, 37.1, 31.9, 29.1, 26.8, 24.9, 23.9, 23.9, 23.5, 22.5]
PAPER_FIG7_FUNCTIONAL = [31.9, 23.0, 23.0, 20.2, 17.4, 19.7, 12.2, 19.7, 12.2, 16.9, 9.9]


@dataclass
class Fig7Result:
    model: str
    mixes: list[ErrorBreakdown] = field(default_factory=list)

    def render(self) -> str:
        rows = []
        for iteration, mix in enumerate(self.mixes):
            paper_syntax = (
                f" ({PAPER_FIG7_SYNTAX[iteration]:.1f})" if iteration < len(PAPER_FIG7_SYNTAX) else ""
            )
            paper_functional = (
                f" ({PAPER_FIG7_FUNCTIONAL[iteration]:.1f})"
                if iteration < len(PAPER_FIG7_FUNCTIONAL)
                else ""
            )
            rows.append(
                [
                    str(iteration),
                    f"{mix.syntax:.1f}{paper_syntax}",
                    f"{mix.functional:.1f}{paper_functional}",
                    f"{mix.success:.1f}",
                ]
            )
        return render_table(
            ["Iteration", "Syntax %", "Functional %", "Success %"],
            rows,
            title=f"Fig. 7 — error mix per iteration, {self.model}; measured (paper)",
        )


def run(
    config: ExperimentConfig | None = None,
    harness: EvaluationHarness | None = None,
    rechisel_cases: list[ReflectionCase] | None = None,
    model: str = GPT4O,
) -> Fig7Result:
    config = config or ExperimentConfig.from_environment()
    harness = harness or EvaluationHarness(config)
    cases = rechisel_cases if rechisel_cases is not None else harness.run_rechisel(model)
    outcome_lists = [
        [result.outcome_at(i) for i in range(config.max_iterations + 1)]
        for case in cases
        for result in case.results
    ]
    mixes = per_iteration_error_mix(outcome_lists, config.max_iterations)
    return Fig7Result(model=model, mixes=mixes)
