"""Table III: ReChisel success rates at iteration caps n in {0, 1, 5, 10}."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import fmt_pair, render_table
from repro.experiments.runner import EvaluationHarness, ReflectionCase
from repro.llm.profiles import CLAUDE_HAIKU, CLAUDE_SONNET, GPT4_TURBO, GPT4O, GPT4O_MINI
from repro.metrics.passk import aggregate_pass_at_k

ITERATION_CAPS = (0, 1, 5, 10)
PASS_KS = (1, 5, 10)

# Paper's Table III: model -> {k: {n: value}}.
PAPER_TABLE3 = {
    GPT4_TURBO: {
        1: {0: 45.54, 1: 52.11, 5: 67.61, 10: 73.24},
        5: {0: 61.97, 1: 68.54, 5: 80.28, 10: 83.10},
        10: {0: 66.20, 1: 72.77, 5: 84.04, 10: 85.92},
    },
    GPT4O: {
        1: {0: 45.07, 1: 56.81, 5: 73.24, 10: 77.46},
        5: {0: 65.26, 1: 75.59, 5: 83.10, 10: 85.45},
        10: {0: 70.89, 1: 79.81, 5: 85.92, 10: 88.73},
    },
    GPT4O_MINI: {
        1: {0: 11.27, 1: 16.43, 5: 31.46, 10: 40.38},
        5: {0: 28.64, 1: 37.56, 5: 54.93, 10: 62.91},
        10: {0: 36.62, 1: 45.54, 5: 61.03, 10: 67.61},
    },
    CLAUDE_SONNET: {
        1: {0: 33.33, 1: 63.38, 5: 80.28, 10: 84.98},
        5: {0: 52.58, 1: 77.46, 5: 91.08, 10: 92.49},
        10: {0: 59.62, 1: 83.10, 5: 92.02, 10: 93.43},
    },
    CLAUDE_HAIKU: {
        1: {0: 26.29, 1: 56.34, 5: 79.81, 10: 84.51},
        5: {0: 52.11, 1: 76.53, 5: 90.14, 10: 91.08},
        10: {0: 58.69, 1: 82.63, 5: 91.55, 10: 92.96},
    },
}


def pass_rate(cases: list[ReflectionCase], samples: int, k: int, iteration_cap: int) -> float:
    counts = [(samples, case.pass_count_at(iteration_cap)) for case in cases]
    return aggregate_pass_at_k(counts, k)


@dataclass
class Table3Result:
    # rates[model][k][n] -> success rate %
    rates: dict[str, dict[int, dict[int, float]]] = field(default_factory=dict)
    raw: dict[str, list[ReflectionCase]] = field(default_factory=dict)
    samples_per_case: int = 10

    def render(self) -> str:
        rows = []
        for k in PASS_KS:
            for model, per_k in self.rates.items():
                cells = [f"Pass@{k}", model]
                for cap in ITERATION_CAPS:
                    paper = PAPER_TABLE3.get(model, {}).get(k, {}).get(cap)
                    cells.append(fmt_pair(per_k[k][cap], paper))
                rows.append(cells)
        headers = ["Metric", "Model"] + [f"n={cap}" for cap in ITERATION_CAPS]
        return render_table(
            headers, rows, title="Table III — ReChisel success rate; measured (paper)"
        )


def run(config: ExperimentConfig | None = None, harness: EvaluationHarness | None = None) -> Table3Result:
    config = config or ExperimentConfig.from_environment()
    harness = harness or EvaluationHarness(config)
    result = Table3Result(samples_per_case=config.samples_per_case)
    for model in config.models:
        cases = harness.run_rechisel(model)
        result.raw[model] = cases
        result.rates[model] = {
            k: {
                cap: pass_rate(cases, config.samples_per_case, k, cap)
                for cap in ITERATION_CAPS
            }
            for k in PASS_KS
        }
    return result
