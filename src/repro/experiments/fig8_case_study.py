"""Fig. 8: the Vector5 case study, replayed through the real workflow.

The paper walks through four attempts at the HDLBits ``Vector5`` problem with
GPT-4o: two syntax errors (writing to individual bits of a ``UInt`` output,
then of a ``UInt`` wire), one functional error (wrong inner-loop bounds), and
finally a correct implementation.  This runner scripts exactly those four
generations and feeds them through the unmodified ReChisel workflow, so the
compiler feedback, revision plans and trace shown are produced by the real
pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.rechisel import ReChisel, ReChiselResult
from repro.llm import prompts
from repro.llm.client import ChatMessage
from repro.problems.families.combinational import vector5
from repro.problems.base import SUITE_HDLBITS
from repro.toolchain.compiler import ChiselCompiler

_IO_BLOCK = """  val io = IO(new Bundle {
    val a = Input(Bool())
    val b = Input(Bool())
    val c = Input(Bool())
    val d = Input(Bool())
    val e = Input(Bool())
    val out = Output(UInt(25.W))
  })"""

_HEADER = "import chisel3._\nimport chisel3.util._\n\n"

ITERATION_0 = _HEADER + f"""class TopModule extends Module {{
{_IO_BLOCK}
  val inputs = VecInit(io.a, io.b, io.c, io.d, io.e)
  var idx = 0
  for (i <- 0 until 5) {{
    for (j <- 0 until 5) {{
      when (inputs(i) === inputs(j)) {{ io.out(24 - idx) := true.B }}
      .otherwise {{ io.out(24 - idx) := false.B }}
      idx += 1
    }}
  }}
}}
"""

ITERATION_1 = _HEADER + f"""class TopModule extends Module {{
{_IO_BLOCK}
  val tempOut = Wire(UInt(25.W))
  val inputs = VecInit(io.a, io.b, io.c, io.d, io.e)
  var idx = 0
  for (i <- 0 until 5) {{
    for (j <- 0 until 5) {{
      when (inputs(i) === inputs(j)) {{ tempOut(24 - idx) := true.B }}
      .otherwise {{ tempOut(24 - idx) := false.B }}
      idx += 1
    }}
  }}
  io.out := tempOut
}}
"""

ITERATION_2 = _HEADER + f"""class TopModule extends Module {{
{_IO_BLOCK}
  val tempOut = Wire(Vec(25, Bool()))
  val inputs = VecInit(io.a, io.b, io.c, io.d, io.e)
  for (bit <- tempOut) {{ bit := false.B }}
  var idx = 0
  for (i <- 0 until 5) {{
    for (j <- i until 5) {{
      tempOut(24 - idx) := inputs(i) === inputs(j)
      idx += 1
    }}
  }}
  io.out := tempOut.asUInt
}}
"""


class ScriptedClient:
    """A ChatClient that replays a fixed sequence of generations.

    Reviewer and Inspector requests receive short canned responses; Generator
    requests pop the next scripted attempt.
    """

    def __init__(self, attempts: list[str]):
        self.attempts = list(attempts)
        self.index = 0

    def complete(self, messages: list[ChatMessage]) -> str:
        system = messages[0].content if messages else ""
        if system == prompts.REVIEWER_SYSTEM:
            return (
                "Error 1:\n  Location: see compiler/simulator feedback above.\n"
                "  Root Cause: the current construct violates the reported rule.\n"
                "  Solution: restructure the assignment as suggested by the feedback."
            )
        if system == prompts.INSPECTOR_SYSTEM:
            return "NO"
        attempt = self.attempts[min(self.index, len(self.attempts) - 1)]
        self.index += 1
        return f"```scala\n{attempt}\n```"


@dataclass
class CaseStudyStep:
    iteration: int
    outcome: str
    detail: str


@dataclass
class Fig8Result:
    steps: list[CaseStudyStep] = field(default_factory=list)
    result: ReChiselResult | None = None

    def render(self) -> str:
        lines = ["Fig. 8 — Vector5 case study (scripted GPT-4o trajectory)"]
        for step in self.steps:
            lines.append(f"Iteration {step.iteration}: {step.outcome}")
            for detail_line in step.detail.splitlines()[:4]:
                lines.append(f"    {detail_line}")
        if self.result is not None and self.result.success:
            lines.append(
                f"Success after {self.result.success_iteration} reflection iterations, "
                "matching the three-iteration repair reported in the paper."
            )
        return "\n".join(lines)


def run() -> Fig8Result:
    problem = vector5(SUITE_HDLBITS)
    golden = problem.golden_chisel
    client = ScriptedClient([ITERATION_0, ITERATION_1, ITERATION_2, golden])
    workflow = ReChisel(client, max_iterations=10)
    compiler = ChiselCompiler(top="TopModule")
    reference = compiler.compile(golden).verilog or ""

    result = workflow.run(
        problem.spec_text(), problem.build_testbench(), reference, case_id=problem.problem_id
    )
    steps = []
    for entry in result.trace.entries + result.trace.discarded:
        steps.append(
            CaseStudyStep(
                entry.iteration,
                entry.feedback.kind.value,
                entry.feedback.text,
            )
        )
    steps.sort(key=lambda step: step.iteration)
    return Fig8Result(steps=steps, result=result)
