"""Fig. 1: proportion of error types in zero-shot generated Chisel code."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import render_table
from repro.experiments.runner import EvaluationHarness
from repro.llm.profiles import CLAUDE_HAIKU, CLAUDE_SONNET, GPT4_TURBO, GPT4O, GPT4O_MINI
from repro.metrics.errors import ErrorBreakdown, error_breakdown

# Paper's Fig. 1: (syntax %, functional %, success %).
PAPER_FIG1 = {
    GPT4_TURBO: (39.7, 15.7, 44.6),
    GPT4O: (32.0, 21.5, 46.4),
    GPT4O_MINI: (85.4, 3.1, 11.5),
    CLAUDE_SONNET: (61.2, 7.7, 31.0),
    CLAUDE_HAIKU: (62.9, 7.0, 30.1),
}


@dataclass
class Fig1Result:
    breakdowns: dict[str, ErrorBreakdown] = field(default_factory=dict)

    def render(self) -> str:
        rows = []
        for model, breakdown in self.breakdowns.items():
            paper = PAPER_FIG1.get(model)
            rows.append(
                [
                    model,
                    f"{breakdown.syntax:.1f}" + (f" ({paper[0]:.1f})" if paper else ""),
                    f"{breakdown.functional:.1f}" + (f" ({paper[1]:.1f})" if paper else ""),
                    f"{breakdown.success:.1f}" + (f" ({paper[2]:.1f})" if paper else ""),
                ]
            )
        return render_table(
            ["Model", "Syntax %", "Functional %", "Success %"],
            rows,
            title="Fig. 1 — zero-shot Chisel error-type proportions; measured (paper)",
        )


def run(config: ExperimentConfig | None = None, harness: EvaluationHarness | None = None) -> Fig1Result:
    config = config or ExperimentConfig.from_environment()
    harness = harness or EvaluationHarness(config)
    result = Fig1Result()
    for model in config.models:
        cases = harness.run_zero_shot(model, "chisel")
        outcomes = [outcome for case in cases for outcome in case.outcomes]
        result.breakdowns[model] = error_breakdown(outcomes)
    return result
