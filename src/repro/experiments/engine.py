"""The sweep execution engine: memoized, stored, serial-or-parallel unit runs.

:class:`SweepEngine` is the single entry point every sweep goes through.  For
each batch of :class:`~repro.experiments.work.WorkUnit`\\ s it

1. resolves each unit's content fingerprint,
2. satisfies what it can from the in-process memo (overlapping sweeps inside
   one run — Table III vs Fig. 6 vs Table IV, or an experiment rerun — cost
   nothing), then from the optional persistent
   :class:`~repro.experiments.store.ResultStore`,
3. executes only the remaining units through the configured executor
   (:class:`~repro.experiments.executors.SerialExecutor`, the process-pool
   :class:`~repro.experiments.executors.ParallelExecutor` when
   ``config.jobs > 1``, or the supervised
   :class:`~repro.fleet.supervisor.FleetExecutor` when ``config.fleet`` is
   also set), streaming each result into the memo and store the moment it
   completes.

``stats`` counts executed units and memo/store hits cumulatively, which is
what the warm-store and resume tests assert against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.executors import LockstepExecutor, ParallelExecutor, SerialExecutor
from repro.experiments.store import ResultStore
from repro.experiments.work import WorkerContext, WorkUnit
from repro.obs import EventBus, get_bus, span
from repro.problems.registry import ProblemRegistry


@dataclass
class SweepStats:
    """Cumulative accounting of how the engine satisfied its units."""

    executed: int = 0
    memo_hits: int = 0
    store_hits: int = 0

    @property
    def total(self) -> int:
        return self.executed + self.memo_hits + self.store_hits


class SweepEngine:
    """Executes work units with memoization, persistence and parallelism."""

    def __init__(
        self,
        config: ExperimentConfig,
        registry: ProblemRegistry | None = None,
        store: ResultStore | None = None,
        executor: SerialExecutor | ParallelExecutor | None = None,
        bus: EventBus | None = None,
    ):
        self.config = config
        #: Structured event bus: batch spans and per-unit progress events are
        #: published here (no-ops while nothing subscribes).
        self.bus = bus if bus is not None else get_bus()
        # A custom registry cannot be rebuilt inside pool workers, so it pins
        # the engine to the serial executor.
        self._custom_registry = registry is not None
        self.context = WorkerContext(registry=registry)
        # Close only stores this engine opened itself: a caller-supplied
        # store (the campaign orchestrator shares one across engine and
        # checkpoint log) outlives any single engine.
        self._owns_store = store is None and bool(config.store_path)
        if store is None and config.store_path:
            store = ResultStore(config.store_path)
        self.store = store
        self._executor = executor
        self._parallel: ParallelExecutor | None = None
        self._fleet = None  # lazily-built FleetExecutor when config.fleet
        self._memo: dict[str, dict] = {}
        self.stats = SweepStats()
        #: Optional per-unit completion callback ``(done, total)``; invoked
        #: for every unit of a batch as it resolves (memo hit, store hit or
        #: execution), in resolution order.  Used by ``--progress``.
        self.progress: Callable[[int, int], None] | None = None

    @property
    def registry(self) -> ProblemRegistry:
        return self.context.registry

    def fingerprint(self, unit: WorkUnit) -> str:
        return self.context.fingerprint(unit)

    # -------------------------------------------------------------------- run

    def run(self, units: Iterable[WorkUnit]) -> list[dict]:
        """Run a batch of units, returning payloads in submission order."""
        units = list(units)
        total = len(units)
        done = 0
        results: list[dict | None] = [None] * len(units)
        pending: list[tuple[WorkUnit, str]] = []
        pending_indices: dict[str, list[int]] = {}

        for index, unit in enumerate(units):
            fingerprint = self.fingerprint(unit)
            payload = self._memo.get(fingerprint)
            if payload is not None:
                self.stats.memo_hits += 1
                results[index] = payload
                done = self._report_progress(done, total)
                continue
            if self.store is not None:
                payload = self.store.get(fingerprint)
                if payload is not None:
                    self.stats.store_hits += 1
                    self._memo[fingerprint] = payload
                    results[index] = payload
                    done = self._report_progress(done, total)
                    continue
            if fingerprint in pending_indices:
                # Duplicate unit within one batch: execute once, fill both.
                pending_indices[fingerprint].append(index)
                continue
            pending_indices[fingerprint] = [index]
            pending.append((unit, fingerprint))

        if pending:
            executor = self._select_executor(len(pending))
            batch = [unit for unit, _ in pending]
            with span(
                "sweep.batch",
                bus=self.bus,
                units=total,
                pending=len(pending),
                executor=type(executor).__name__,
            ):
                for position, payload in executor.run_stream(batch):
                    unit, fingerprint = pending[position]
                    self._memo[fingerprint] = payload
                    if self.store is not None:
                        self.store.put(fingerprint, unit, payload)
                    for index in pending_indices[fingerprint]:
                        results[index] = payload
                        done = self._report_progress(done, total)
                    self.stats.executed += 1

        return results  # type: ignore[return-value]

    def _report_progress(self, done: int, total: int) -> int:
        done += 1
        if self.progress is not None:
            self.progress(done, total)
        if self.bus.active:
            self.bus.publish("sweep.progress", "unit", done=done, total=total)
        return done

    # ---------------------------------------------------------------- helpers

    def _select_executor(self, pending_count: int):
        if self._executor is not None:
            return self._executor
        jobs = getattr(self.config, "jobs", 1) or 1
        if jobs > 1 and pending_count > 1 and not self._custom_registry:
            # One long-lived executor: its process pool (and every worker's
            # caches) stays warm across all of this engine's sweeps.
            if getattr(self.config, "fleet", False):
                if self._fleet is None:
                    from repro.fleet import FleetConfig, FleetExecutor

                    fleet_config = FleetConfig.from_environment(
                        FleetConfig(workers=jobs)
                    )
                    self._fleet = FleetExecutor(fleet_config)
                return self._fleet
            if self._parallel is None:
                self._parallel = ParallelExecutor(jobs)
            return self._parallel
        if getattr(self.config, "lockstep", False) and pending_count > 1:
            return LockstepExecutor(self.context)
        return SerialExecutor(self.context)

    def close(self) -> None:
        """Release the store's file handles (if owned) and worker processes."""
        if self.store is not None and self._owns_store:
            self.store.close()
        if self._parallel is not None:
            self._parallel.shutdown()
            self._parallel = None
        if self._fleet is not None:
            self._fleet.shutdown()
            self._fleet = None


def chunk_by_case(payloads: Sequence[dict], samples_per_case: int) -> list[list[dict]]:
    """Regroup a flat case-major payload list into per-case sample lists."""
    return [
        list(payloads[start : start + samples_per_case])
        for start in range(0, len(payloads), samples_per_case)
    ]
