"""Table I: LLM baseline capabilities, Chisel vs Verilog (zero-shot Pass@k)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import fmt_pair, render_table
from repro.experiments.runner import EvaluationHarness, ZeroShotCase
from repro.llm.profiles import CLAUDE_HAIKU, CLAUDE_SONNET, GPT4_TURBO, GPT4O, GPT4O_MINI
from repro.metrics.passk import aggregate_pass_at_k

# Paper's Table I: model -> (chisel, verilog) per k.
PAPER_TABLE1 = {
    GPT4_TURBO: {1: (45.54, 67.61), 5: (61.97, 77.46), 10: (66.20, 81.22)},
    GPT4O: {1: (45.07, 69.48), 5: (65.26, 75.59), 10: (70.89, 77.46)},
    GPT4O_MINI: {1: (11.27, 59.15), 5: (28.64, 69.48), 10: (36.62, 72.30)},
    CLAUDE_SONNET: {1: (33.33, 77.93), 5: (52.58, 82.16), 10: (59.62, 84.04)},
    CLAUDE_HAIKU: {1: (26.29, 75.59), 5: (54.46, 83.57), 10: (58.69, 84.04)},
}

PASS_KS = (1, 5, 10)


@dataclass
class Table1Row:
    model: str
    chisel: dict[int, float]
    verilog: dict[int, float]


@dataclass
class Table1Result:
    rows: list[Table1Row] = field(default_factory=list)
    raw: dict[str, dict[str, list[ZeroShotCase]]] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["Model"]
        for k in PASS_KS:
            headers += [f"CHS pass@{k}", f"VRL pass@{k}"]
        table_rows = []
        for row in self.rows:
            cells = [row.model]
            for k in PASS_KS:
                paper = PAPER_TABLE1.get(row.model, {}).get(k)
                cells.append(fmt_pair(row.chisel[k], paper[0] if paper else None))
                cells.append(fmt_pair(row.verilog[k], paper[1] if paper else None))
            table_rows.append(cells)
        return render_table(
            headers,
            table_rows,
            title="Table I — zero-shot baseline, Chisel vs Verilog; measured (paper)",
        )


def _pass_rates(cases: list[ZeroShotCase], samples: int) -> dict[int, float]:
    counts = [(samples, case.pass_count) for case in cases]
    return {k: aggregate_pass_at_k(counts, k) for k in PASS_KS}


def run(config: ExperimentConfig | None = None, harness: EvaluationHarness | None = None) -> Table1Result:
    config = config or ExperimentConfig.from_environment()
    harness = harness or EvaluationHarness(config)
    result = Table1Result()
    for model in config.models:
        chisel_cases = harness.run_zero_shot(model, "chisel")
        verilog_cases = harness.run_zero_shot(model, "verilog")
        result.raw[model] = {"chisel": chisel_cases, "verilog": verilog_cases}
        result.rows.append(
            Table1Row(
                model,
                _pass_rates(chisel_cases, config.samples_per_case),
                _pass_rates(verilog_cases, config.samples_per_case),
            )
        )
    return result
