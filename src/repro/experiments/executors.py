"""Pluggable executors: run a batch of work units serially or across processes.

Both executors expose the same streaming protocol —
``run_stream(units)`` yields ``(index, payload)`` as units finish — so the
engine can persist results to the store the moment they exist (which is what
makes interrupted paper-scale sweeps resumable).  Units are independent and
self-seeding, so the two executors are bit-identical by construction; a tier-1
test asserts it.

The parallel executor uses a ``ProcessPoolExecutor`` whose workers each build
one :class:`~repro.experiments.work.WorkerContext` (problem registry, compiler
memo, golden-Verilog cache, compiled-sim kernel cache) on first use and reuse
it for every unit they run.  The ``fork`` start method is preferred where
available so workers don't pay module re-import costs.

A third executor with the same protocol lives in :mod:`repro.fleet`:
:class:`~repro.fleet.supervisor.FleetExecutor` trades the pool for supervised
worker processes that survive crashes, hangs and poisoned jobs (enable with
``config.fleet`` / ``REPRO_FLEET=1``).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Iterable, Iterator

from repro.core.session import LLMCall, ToolCall
from repro.experiments.strategies import execute_unit, strategy_from_unit
from repro.experiments.work import WorkerContext, WorkUnit
from repro.toolchain.simulator import SimulateRequest


class SerialExecutor:
    """Run every unit in-process against one shared worker context."""

    jobs = 1

    def __init__(self, context: WorkerContext | None = None):
        self.context = context or WorkerContext()

    def run_stream(self, units: Iterable[WorkUnit]) -> Iterator[tuple[int, dict]]:
        for index, unit in enumerate(units):
            yield index, execute_unit(self.context, unit)


class LockstepExecutor:
    """Drive all unit sessions concurrently, coalescing simulate tool calls.

    Every unit's step-wise session advances in-process until it parks on a
    :class:`ToolCall` carrying a :class:`SimulateRequest` ``batch`` payload
    (or finishes).  Parked requests are then executed together through
    :meth:`Simulator.simulate_many`, which groups structurally-identical
    candidates onto shared vector kernels (see
    ``repro.sim.testbench.run_testbenches``), and the sessions resume with
    their individual outcomes.  LLM calls and other tool calls run inline, so
    results are bit-identical to :class:`SerialExecutor`; a tier-1 test
    asserts it.  Enable with ``config.lockstep`` / ``REPRO_LOCKSTEP=1``.
    """

    jobs = 1

    def __init__(self, context: WorkerContext | None = None):
        self.context = context or WorkerContext()

    def run_stream(self, units: Iterable[WorkUnit]) -> Iterator[tuple[int, dict]]:
        live: list[list] = []  # [index, session, client, send_value]
        for index, unit in enumerate(units):
            client = self.context.client_for(unit)
            session = strategy_from_unit(unit).session(self.context, unit, client)
            live.append([index, session, client, None])

        _START = object()
        for entry in live:
            entry[3] = _START

        while live:
            parked: list[tuple[list, SimulateRequest]] = []
            finished: list[tuple[int, dict]] = []
            for entry in live:
                index, session, client, value = entry
                try:
                    step = next(session) if value is _START else session.send(value)
                    while True:
                        if isinstance(step, LLMCall):
                            step = session.send(client.complete(step.messages))
                        elif isinstance(step, ToolCall) and isinstance(step.batch, SimulateRequest):
                            parked.append((entry, step.batch))
                            break
                        else:
                            step = session.send(step.run())
                except StopIteration as stop:
                    finished.append((index, stop.value))

            parked_ids = {id(e) for e, _ in parked}
            live = [e for e in live if id(e) in parked_ids]
            yield from finished

            if parked:
                # Group by simulator so each facade's top-module selection and
                # parse memo apply, then fan the batch into vector lanes.
                by_sim: dict[int, list[tuple[list, SimulateRequest]]] = {}
                for entry, request in parked:
                    by_sim.setdefault(id(request.simulator), []).append((entry, request))
                for group in by_sim.values():
                    simulator = group[0][1].simulator
                    outcomes = simulator.simulate_many(
                        [(r.dut_verilog, r.reference, r.testbench) for _, r in group]
                    )
                    for (entry, _request), outcome in zip(group, outcomes):
                        entry[3] = outcome


# Per-process context for pool workers; built lazily so both the initializer
# path and a re-used warm worker end up with exactly one context.
_WORKER_CONTEXT: WorkerContext | None = None


def _init_worker() -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = WorkerContext()


def _execute_in_worker(unit: WorkUnit) -> dict:
    global _WORKER_CONTEXT
    if _WORKER_CONTEXT is None:  # pragma: no cover - initializer normally ran
        _WORKER_CONTEXT = WorkerContext()
    return execute_unit(_WORKER_CONTEXT, unit)


def _pool_context() -> multiprocessing.context.BaseContext:
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class ParallelExecutor:
    """Fan units out over a process pool; results stream back as they finish.

    The pool is created lazily and *kept alive across batches*, so workers
    build their :class:`~repro.experiments.work.WorkerContext` (registry,
    compiler memo, golden-Verilog cache, kernel cache) once and stay warm for
    every subsequent sweep — a multi-experiment run pays one cold start, not
    one per ``run()``.  Call :meth:`shutdown` (or rely on interpreter exit)
    to release the workers.

    Requires units resolvable against the *default* problem registry (workers
    rebuild it; custom registries hold arbitrary closures and don't cross
    process boundaries).  The engine falls back to :class:`SerialExecutor`
    when a custom registry is in play.
    """

    def __init__(self, jobs: int):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=_pool_context(), initializer=_init_worker
            )
        return self._pool

    def run_stream(self, units: Iterable[WorkUnit]) -> Iterator[tuple[int, dict]]:
        units = list(units)
        if not units:
            return
        pool = self._ensure_pool()
        futures = {pool.submit(_execute_in_worker, unit): i for i, unit in enumerate(units)}
        try:
            for future in as_completed(futures):
                yield futures[future], future.result()
        finally:
            # If the consumer abandons the stream (error, early exit), don't
            # leave queued units running in the still-alive pool.
            for future in futures:
                future.cancel()

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
