"""Shared evaluation machinery for the experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.autochip import AutoChip, AutoChipResult
from repro.baselines.zero_shot import ZeroShotRunner
from repro.core.rechisel import ReChisel, ReChiselResult
from repro.experiments.config import ExperimentConfig
from repro.llm.profiles import MODEL_PROFILES
from repro.llm.synthetic import SyntheticChiselLLM
from repro.problems.base import Problem
from repro.problems.registry import ProblemRegistry, build_default_registry
from repro.toolchain.compiler import ChiselCompiler


@dataclass
class ZeroShotCase:
    """Zero-shot sample outcomes for one case ("success"/"syntax"/"functional")."""

    problem_id: str
    outcomes: list[str] = field(default_factory=list)

    @property
    def pass_count(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome == "success")


@dataclass
class ReflectionCase:
    """Reflection-run results for one case (one entry per sample)."""

    problem_id: str
    results: list[ReChiselResult] = field(default_factory=list)

    def pass_count_at(self, iteration_cap: int) -> int:
        return sum(1 for result in self.results if result.success_by(iteration_cap))


@dataclass
class AutoChipCase:
    problem_id: str
    results: list[AutoChipResult] = field(default_factory=list)

    def pass_count_at(self, iteration_cap: int) -> int:
        return sum(1 for result in self.results if result.success_by(iteration_cap))


class EvaluationHarness:
    """Runs the baseline / ReChisel / AutoChip sweeps behind every experiment."""

    def __init__(self, config: ExperimentConfig, registry: ProblemRegistry | None = None):
        self.config = config
        self.registry = registry or build_default_registry()
        # One shared compiler with a large result cache: identical candidate
        # Chisel recurs across samples and iterations (the synthetic LLM draws
        # from a finite fault space), so most compiles in a sweep are repeats.
        self.compiler = ChiselCompiler(top="TopModule", cache_size=1024)
        self._references: dict[str, str] = {}

    # ----------------------------------------------------------------- inputs

    def problems(self) -> list[Problem]:
        problems = list(self.registry)
        if self.config.max_cases is not None and self.config.max_cases < len(problems):
            # Deterministic, suite-balanced subset: take every k-th problem.
            stride = max(1, len(problems) // self.config.max_cases)
            problems = problems[::stride][: self.config.max_cases]
        return problems

    def reference_verilog(self, problem: Problem) -> str:
        if problem.problem_id not in self._references:
            result = self.compiler.compile(problem.golden_chisel)
            if not result.success or result.verilog is None:
                raise RuntimeError(
                    f"golden solution for {problem.problem_id} failed to compile:\n"
                    f"{result.render_feedback()}"
                )
            self._references[problem.problem_id] = result.verilog
        return self._references[problem.problem_id]

    def client_for(self, model: str, seed_offset: int = 0) -> SyntheticChiselLLM:
        return SyntheticChiselLLM(
            self.registry,
            MODEL_PROFILES[model],
            seed=self.config.seed + seed_offset,
            compiler=self.compiler,
            golden_verilog_cache=self._references,
        )

    # ------------------------------------------------------------------ sweeps

    def run_zero_shot(self, model: str, language: str) -> list[ZeroShotCase]:
        """Zero-shot sweep: ``samples_per_case`` independent attempts per case."""
        cases: list[ZeroShotCase] = []
        for case_index, problem in enumerate(self.problems()):
            reference = self.reference_verilog(problem)
            case = ZeroShotCase(problem.problem_id)
            for sample in range(self.config.samples_per_case):
                client = self.client_for(model, seed_offset=1000 * case_index + sample)
                runner = ZeroShotRunner(client, language=language)
                case.outcomes.append(runner.run(problem, reference).outcome)
            cases.append(case)
        return cases

    def run_rechisel(
        self,
        model: str,
        enable_escape: bool = True,
        use_knowledge: bool = True,
        feedback_detail: str = "full",
    ) -> list[ReflectionCase]:
        """Full ReChisel sweep with the configured iteration cap."""
        cases: list[ReflectionCase] = []
        for case_index, problem in enumerate(self.problems()):
            reference = self.reference_verilog(problem)
            case = ReflectionCase(problem.problem_id)
            testbench = problem.build_testbench()
            spec = problem.spec_text()
            for sample in range(self.config.samples_per_case):
                client = self.client_for(model, seed_offset=1000 * case_index + sample)
                workflow = ReChisel(
                    client,
                    max_iterations=self.config.max_iterations,
                    enable_escape=enable_escape,
                    use_knowledge=use_knowledge,
                    feedback_detail=feedback_detail,
                )
                case.results.append(
                    workflow.run(spec, testbench, reference, case_id=problem.problem_id)
                )
            cases.append(case)
        return cases

    def run_autochip(self, model: str) -> list[AutoChipCase]:
        """AutoChip sweep (direct Verilog generation with feedback)."""
        cases: list[AutoChipCase] = []
        for case_index, problem in enumerate(self.problems()):
            reference = self.reference_verilog(problem)
            case = AutoChipCase(problem.problem_id)
            testbench = problem.build_testbench()
            for sample in range(self.config.samples_per_case):
                client = self.client_for(model, seed_offset=1000 * case_index + sample)
                runner = AutoChip(client, max_iterations=self.config.max_iterations)
                case.results.append(runner.run(problem, reference, testbench))
            cases.append(case)
        return cases
