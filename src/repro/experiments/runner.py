"""Shared evaluation machinery for the experiment runners.

:class:`EvaluationHarness` keeps its historical sweep API (``run_zero_shot`` /
``run_rechisel`` / ``run_autochip``) but no longer owns any loops: each sweep
is decomposed into :class:`~repro.experiments.work.WorkUnit`\\ s and handed to
the :class:`~repro.experiments.engine.SweepEngine`, which memoizes, persists
and (for ``config.jobs > 1``) parallelizes them.  Overlapping sweeps across
experiments — Table III, Table IV, Fig. 6, Fig. 7 and the ablations all need
ReChisel runs — therefore share work automatically.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.baselines.autochip import AutoChipResult
from repro.core.rechisel import ReChiselResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import SweepEngine, chunk_by_case
from repro.experiments.strategies import (
    AutoChipStrategy,
    ReChiselStrategy,
    Strategy,
    ZeroShotStrategy,
)
from repro.experiments.work import WorkUnit
from repro.problems.base import Problem
from repro.problems.registry import ProblemRegistry
from repro.toolchain.compiler import ChiselCompiler


@dataclass
class ZeroShotCase:
    """Zero-shot sample outcomes for one case ("success"/"syntax"/"functional")."""

    problem_id: str
    outcomes: list[str] = field(default_factory=list)

    @property
    def pass_count(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome == "success")


@dataclass
class ReflectionCase:
    """Reflection-run results for one case (one entry per sample)."""

    problem_id: str
    results: list[ReChiselResult] = field(default_factory=list)

    def pass_count_at(self, iteration_cap: int) -> int:
        return sum(1 for result in self.results if result.success_by(iteration_cap))


@dataclass
class AutoChipCase:
    problem_id: str
    results: list[AutoChipResult] = field(default_factory=list)

    def pass_count_at(self, iteration_cap: int) -> int:
        return sum(1 for result in self.results if result.success_by(iteration_cap))


def problem_family(problem: Problem) -> str:
    """The problem's family: its suite plus the id with parameters stripped.

    ``alu_w4``/``alu_w8`` are one family; ``sequence_detector_101`` in HDLBits
    and ``sequence_detector_0110`` in RTLLM are distinct (different suites).
    """
    return f"{problem.suite}:{re.sub(r'[0-9]+', '', problem.problem_id)}"


def _largest_remainder_quotas(sizes: dict[str, int], budget: int) -> dict[str, int]:
    """Apportion ``budget`` across groups proportionally to their sizes.

    Largest-remainder method: every group's quota is within one of its exact
    proportional share.  Ties break on group insertion order (deterministic).
    """
    total = sum(sizes.values())
    shares = {group: size * budget / total for group, size in sizes.items()}
    quotas = {group: int(share) for group, share in shares.items()}
    position = {group: order for order, group in enumerate(sizes)}
    by_remainder = sorted(sizes, key=lambda group: (quotas[group] - shares[group], position[group]))
    for group in by_remainder[: budget - sum(quotas.values())]:
        quotas[group] += 1
    return quotas


def stratified_subset(problems: list[Problem], max_cases: int) -> list[Problem]:
    """A deterministic ``max_cases``-sized subset, stratified per family.

    Two-level apportionment: the budget splits across suites first (so even a
    tiny subset touches every suite), then across problem families within each
    suite, both by largest remainder; within a family the picks are evenly
    strided.  Output preserves the original problem order.
    """
    suites: dict[str, dict[str, list[int]]] = {}
    for index, problem in enumerate(problems):
        families = suites.setdefault(problem.suite, {})
        families.setdefault(problem_family(problem), []).append(index)

    suite_sizes = {
        suite: sum(len(members) for members in families.values())
        for suite, families in suites.items()
    }
    suite_quotas = _largest_remainder_quotas(suite_sizes, max_cases)

    chosen: list[int] = []
    for suite, families in suites.items():
        family_sizes = {family: len(members) for family, members in families.items()}
        family_quotas = _largest_remainder_quotas(family_sizes, suite_quotas[suite])
        for family, members in families.items():
            quota = family_quotas[family]
            chosen.extend(members[(pick * len(members)) // quota] for pick in range(quota))
    return [problems[index] for index in sorted(chosen)]


class EvaluationHarness:
    """Runs the baseline / ReChisel / AutoChip sweeps behind every experiment."""

    def __init__(
        self,
        config: ExperimentConfig,
        registry: ProblemRegistry | None = None,
        engine: SweepEngine | None = None,
    ):
        self.config = config
        self.engine = engine or SweepEngine(config, registry=registry)
        self.registry = self.engine.registry

    @property
    def compiler(self) -> ChiselCompiler:
        """The serial worker context's compiler (shared caches, back-compat)."""
        return self.engine.context.compiler

    # ----------------------------------------------------------------- inputs

    def problems(self) -> list[Problem]:
        problems = list(self.registry)
        if self.config.max_cases is not None and self.config.max_cases < len(problems):
            problems = stratified_subset(problems, self.config.max_cases)
        return problems

    def reference_verilog(self, problem: Problem) -> str:
        return self.engine.context.reference_verilog(problem)

    # ------------------------------------------------------------------ sweeps

    def _sweep(self, strategy: Strategy, model: str) -> list[tuple[Problem, list[object]]]:
        """Decompose one sweep into units, run them, rehydrate per-case results."""
        problems = self.problems()
        knobs = strategy.knob_items()
        max_iterations = self.config.max_iterations if strategy.name != "zero_shot" else 0
        units = [
            WorkUnit(
                strategy=strategy.name,
                model=model,
                problem_id=problem.problem_id,
                case_index=case_index,
                sample=sample,
                seed=self.config.seed,
                max_iterations=max_iterations,
                knobs=knobs,
            )
            for case_index, problem in enumerate(problems)
            for sample in range(self.config.samples_per_case)
        ]
        payloads = self.engine.run(units)
        grouped = chunk_by_case(payloads, self.config.samples_per_case)
        return [
            (problem, [strategy.rehydrate(payload) for payload in case_payloads])
            for problem, case_payloads in zip(problems, grouped)
        ]

    def run_zero_shot(self, model: str, language: str) -> list[ZeroShotCase]:
        """Zero-shot sweep: ``samples_per_case`` independent attempts per case."""
        return [
            ZeroShotCase(problem.problem_id, outcomes=list(outcomes))
            for problem, outcomes in self._sweep(ZeroShotStrategy(language), model)
        ]

    def run_rechisel(
        self,
        model: str,
        enable_escape: bool = True,
        use_knowledge: bool = True,
        feedback_detail: str = "full",
    ) -> list[ReflectionCase]:
        """Full ReChisel sweep with the configured iteration cap."""
        strategy = ReChiselStrategy(
            enable_escape=enable_escape,
            use_knowledge=use_knowledge,
            feedback_detail=feedback_detail,
        )
        return [
            ReflectionCase(problem.problem_id, results=list(results))
            for problem, results in self._sweep(strategy, model)
        ]

    def run_autochip(self, model: str) -> list[AutoChipCase]:
        """AutoChip sweep (direct Verilog generation with feedback)."""
        return [
            AutoChipCase(problem.problem_id, results=list(results))
            for problem, results in self._sweep(AutoChipStrategy(), model)
        ]
