"""Fig. 6: success rate as a function of the reflection-iteration cap."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import render_table
from repro.experiments.runner import EvaluationHarness, ReflectionCase
from repro.experiments.table3 import PASS_KS, pass_rate


@dataclass
class Fig6Result:
    """``series[model][k]`` is the success-rate curve over n = 0..max_iterations."""

    series: dict[str, dict[int, list[float]]] = field(default_factory=dict)
    max_iterations: int = 10

    def render(self) -> str:
        headers = ["Model", "Metric"] + [f"n={n}" for n in range(self.max_iterations + 1)]
        rows = []
        for model, per_k in self.series.items():
            for k in PASS_KS:
                rows.append([model, f"Pass@{k}"] + [f"{value:.1f}" for value in per_k[k]])
        return render_table(headers, rows, title="Fig. 6 — success rate vs number of iterations")


def run(
    config: ExperimentConfig | None = None,
    harness: EvaluationHarness | None = None,
    rechisel_cases: dict[str, list[ReflectionCase]] | None = None,
) -> Fig6Result:
    config = config or ExperimentConfig.from_environment()
    harness = harness or EvaluationHarness(config)
    result = Fig6Result(max_iterations=config.max_iterations)
    for model in config.models:
        cases = (
            rechisel_cases[model]
            if rechisel_cases is not None and model in rechisel_cases
            else harness.run_rechisel(model)
        )
        result.series[model] = {
            k: [
                pass_rate(cases, config.samples_per_case, k, cap)
                for cap in range(config.max_iterations + 1)
            ]
            for k in PASS_KS
        }
    return result
