"""The three evaluation flows behind every sweep, as one ``Strategy`` interface.

The harness historically carried three copy-pasted loops (zero-shot, ReChisel,
AutoChip).  Each is now a :class:`Strategy`: it knows how to *execute* one
:class:`~repro.experiments.work.WorkUnit` inside a worker context and return a
compact JSON-serializable payload, and how to *rehydrate* that payload into
the per-sample result object the experiment aggregations consume.  The payload
round-trip is what lets the persistent result store and the process-pool
executor carry results across process and run boundaries.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.baselines.autochip import AutoChip, AutoChipResult
from repro.baselines.zero_shot import ZeroShotRunner
from repro.core.rechisel import ReChisel, ReChiselResult
from repro.core.session import Session, ToolCall, drive
from repro.experiments.work import (
    STRATEGY_AUTOCHIP,
    STRATEGY_RECHISEL,
    STRATEGY_ZERO_SHOT,
    WorkerContext,
    WorkUnit,
)


class Strategy(ABC):
    """One evaluation flow: how to run a single (problem, sample) cell.

    Each strategy is defined by its :meth:`session` — a step-wise generator
    over one work unit (see :mod:`repro.core.session`) that returns the
    unit's payload.  :meth:`execute` is the blocking mode used by the sweep
    executors (it drives the session inline against the unit's own seeded
    client); the async generation service drives the *same* session through
    its batching dispatcher, which is why the two modes are bit-identical.
    """

    name: str

    def knobs(self) -> dict[str, object]:
        """The strategy's configuration knobs (folded into unit fingerprints)."""
        return {}

    def knob_items(self) -> tuple[tuple[str, object], ...]:
        return tuple(sorted(self.knobs().items()))

    @abstractmethod
    def session(self, context: WorkerContext, unit: WorkUnit, client) -> Session:
        """A step-wise session running one unit; returns the unit's payload."""

    def execute(self, context: WorkerContext, unit: WorkUnit) -> dict:
        """Run one unit to completion and return its payload."""
        client = context.client_for(unit)
        return drive(self.session(context, unit, client), client)

    @abstractmethod
    def rehydrate(self, payload: dict) -> object:
        """Turn a (possibly stored) payload back into a per-sample result."""


class ZeroShotStrategy(Strategy):
    """One generation, no reflection; Chisel or Verilog target."""

    name = STRATEGY_ZERO_SHOT

    def __init__(self, language: str = "chisel"):
        self.language = language

    def knobs(self) -> dict[str, object]:
        return {"language": self.language}

    def session(self, context: WorkerContext, unit: WorkUnit, client) -> Session:
        problem = context.problem(unit.problem_id)
        reference = yield ToolCall(lambda: context.reference_verilog(problem), "reference")
        runner = ZeroShotRunner(
            client,
            language=self.language,
            compiler=context.compiler,
            simulator=context.simulator,
        )
        outcome = yield from runner.session(problem, reference)
        return {"outcome": outcome.outcome}

    def rehydrate(self, payload: dict) -> str:
        return payload["outcome"]


class ReChiselStrategy(Strategy):
    """The full reflection workflow, including the ablation knobs."""

    name = STRATEGY_RECHISEL

    def __init__(
        self,
        enable_escape: bool = True,
        use_knowledge: bool = True,
        feedback_detail: str = "full",
    ):
        self.enable_escape = enable_escape
        self.use_knowledge = use_knowledge
        self.feedback_detail = feedback_detail

    def knobs(self) -> dict[str, object]:
        return {
            "enable_escape": self.enable_escape,
            "use_knowledge": self.use_knowledge,
            "feedback_detail": self.feedback_detail,
        }

    def session(self, context: WorkerContext, unit: WorkUnit, client) -> Session:
        problem = context.problem(unit.problem_id)
        reference = yield ToolCall(lambda: context.reference_verilog(problem), "reference")
        workflow = ReChisel(
            client,
            max_iterations=unit.max_iterations,
            enable_escape=self.enable_escape,
            use_knowledge=self.use_knowledge,
            feedback_detail=self.feedback_detail,
            compiler=context.compiler,
            simulator=context.simulator,
        )
        result = yield from workflow.session(
            problem.spec_text(), problem.build_testbench(), reference, case_id=problem.problem_id
        )
        return result.to_payload()

    def rehydrate(self, payload: dict) -> ReChiselResult:
        return ReChiselResult.from_payload(payload)


class AutoChipStrategy(Strategy):
    """Direct Verilog generation with raw tool feedback (Table IV baseline)."""

    name = STRATEGY_AUTOCHIP

    def session(self, context: WorkerContext, unit: WorkUnit, client) -> Session:
        problem = context.problem(unit.problem_id)
        reference = yield ToolCall(lambda: context.reference_verilog(problem), "reference")
        runner = AutoChip(
            client,
            max_iterations=unit.max_iterations,
            simulator=context.simulator,
        )
        result = yield from runner.session(problem, reference, problem.build_testbench())
        return result.to_payload()

    def rehydrate(self, payload: dict) -> AutoChipResult:
        return AutoChipResult.from_payload(payload)


def strategy_from_unit(unit: WorkUnit) -> Strategy:
    """Reconstruct the strategy named by a unit (used inside pool workers)."""
    if unit.strategy == STRATEGY_ZERO_SHOT:
        return ZeroShotStrategy(language=str(unit.knob("language", "chisel")))
    if unit.strategy == STRATEGY_RECHISEL:
        return ReChiselStrategy(
            enable_escape=bool(unit.knob("enable_escape", True)),
            use_knowledge=bool(unit.knob("use_knowledge", True)),
            feedback_detail=str(unit.knob("feedback_detail", "full")),
        )
    if unit.strategy == STRATEGY_AUTOCHIP:
        return AutoChipStrategy()
    raise ValueError(f"unknown strategy {unit.strategy!r}")


def execute_unit(context: WorkerContext, unit: WorkUnit) -> dict:
    """Execute one unit in the given context; the executor entry point."""
    return strategy_from_unit(unit).execute(context, unit)
