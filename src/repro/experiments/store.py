"""Persistent, append-only result store for sweep work units.

One JSON object per line, keyed by the unit's content fingerprint (see
:func:`~repro.experiments.work.unit_fingerprint`).  Append-only writes with a
flush per record make the store crash-tolerant: a sweep killed mid-run keeps
every completed unit, and the loader skips a torn trailing line, so rerunning
the sweep resumes exactly where it stopped.  Lines carry the payload schema
version; stores written by an incompatible engine are ignored, not misread.

The store is written only from the engine's coordinating process (pool workers
stream payloads back rather than writing), so no file locking is needed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO

from repro.experiments.work import PAYLOAD_VERSION, WorkUnit


class ResultStore:
    """A fingerprint-keyed JSON-lines store of work-unit payloads."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._records: dict[str, dict] = {}
        self._handle: IO[str] | None = None
        self._load()

    # ------------------------------------------------------------------- load

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A torn trailing line from an interrupted run; everything
                    # before it is intact, so just skip it.
                    continue
                if record.get("v") != PAYLOAD_VERSION:
                    continue
                fingerprint = record.get("fp")
                payload = record.get("payload")
                if isinstance(fingerprint, str) and isinstance(payload, dict):
                    self._records[fingerprint] = payload

    # ------------------------------------------------------------------ access

    def get(self, fingerprint: str) -> dict | None:
        return self._records.get(fingerprint)

    def put(self, fingerprint: str, unit: WorkUnit, payload: dict) -> None:
        """Record one completed unit; durable as soon as this returns."""
        if fingerprint in self._records:
            return
        self._records[fingerprint] = payload
        record = {
            "v": PAYLOAD_VERSION,
            "fp": fingerprint,
            "strategy": unit.strategy,
            "model": unit.model,
            "problem_id": unit.problem_id,
            "sample": unit.sample,
            "payload": payload,
        }
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
