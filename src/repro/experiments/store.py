"""Persistent result store: segmented, indexed, crash-safe, multi-writer.

The store is a directory of JSON-lines files keyed by work-unit content
fingerprint (see :func:`~repro.experiments.work.unit_fingerprint`):

* ``seg-NNNNNN.jsonl`` — *sealed segments*: immutable once sealed, each with a
  sidecar ``seg-NNNNNN.jsonl.idx`` mapping fingerprint -> (byte offset, length) so
  opening a million-record store reads indexes, not records;
* ``tail.jsonl`` — the *active tail* every ``put`` appends to; when it grows
  past the rotation threshold it is fsynced, indexed, and atomically renamed
  into the next sealed segment;
* ``lock`` — an ``flock`` file serializing appends, rotation and compaction
  across processes, so concurrent writers (pool workers' engines, a service
  sharing a sweep's store) never interleave torn records.

Lookups are O(1): an in-memory fingerprint index maps straight to a byte
range, and ``get`` seeks and reads exactly one record — no full scan at any
store size.  Crash safety is tested by killing the writer mid-append
(``tests/test_result_store.py``): a record is *committed* once ``put``
returns, the loader recovers a torn trailing line by truncating the tail to
its last intact record, and a missing or corrupt ``.idx`` is rebuilt by
scanning its segment.  ``compact()`` rewrites the live record set into fresh
sealed segments and drops superseded duplicates; a crash mid-compaction
leaves both generations on disk, and last-wins replay makes that benign.

A store created by earlier releases as a single JSON-lines *file* is migrated
in place on first open (atomic rename to ``<path>.migrating``, re-import,
cleanup), so existing ``REPRO_RESULT_STORE`` paths keep working.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import IO, Iterator

try:  # POSIX; the container/CI platform.  Windows degrades to no inter-process lock.
    import fcntl
except ImportError:  # pragma: no cover - non-posix fallback
    fcntl = None

from repro.experiments.work import PAYLOAD_VERSION, WorkUnit

SEGMENT_RECORDS_ENV = "REPRO_STORE_SEGMENT_RECORDS"
SEGMENT_BYTES_ENV = "REPRO_STORE_SEGMENT_BYTES"
FSYNC_ENV = "REPRO_STORE_FSYNC"

DEFAULT_SEGMENT_RECORDS = 4096
DEFAULT_SEGMENT_BYTES = 8 * 1024 * 1024

#: Index-key prefix separating *meta* records (campaign manifests, stage
#: frontiers — anything keyed by name rather than by unit fingerprint) from
#: unit payloads.  The prefix contains a character that can never appear in a
#: hex fingerprint, so the two key spaces cannot collide.
META_PREFIX = "meta:"

_TAIL = "tail.jsonl"
_LOCK = "lock"
_SEG_PREFIX = "seg-"
_SEG_SUFFIX = ".jsonl"
_IDX_SUFFIX = ".idx"
_MIGRATING_SUFFIX = ".migrating"


def _env_int(name: str) -> int | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


class _FileLock:
    """``flock``-based inter-process lock (no-op where fcntl is unavailable)."""

    def __init__(self, path: Path):
        self._path = path
        self._handle: IO[bytes] | None = None
        self._depth = 0

    def acquire(self) -> None:
        if self._depth == 0 and fcntl is not None:
            if self._handle is None:
                self._handle = self._path.open("ab")
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
        self._depth += 1

    def release(self) -> None:
        self._depth -= 1
        if self._depth == 0 and fcntl is not None and self._handle is not None:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "_FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


def _scan_lines(data: bytes) -> Iterator[tuple[int, int, dict | None]]:
    """Yield ``(offset, length, record-or-None)`` for each ``\\n``-terminated line.

    ``record`` is ``None`` for undecodable lines; an unterminated trailing
    chunk is yielded as undecodable (it is by definition torn).
    """
    offset = 0
    size = len(data)
    while offset < size:
        newline = data.find(b"\n", offset)
        if newline < 0:
            yield offset, size - offset, None
            return
        length = newline + 1 - offset
        line = data[offset:newline].strip()
        record = None
        if line:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                record = None
            yield offset, length, record
        offset = newline + 1


def _valid(record) -> bool:
    return (
        isinstance(record, dict)
        and record.get("v") == PAYLOAD_VERSION
        and isinstance(record.get("fp"), str)
        and isinstance(record.get("payload"), dict)
    )


class ResultStore:
    """A fingerprint-keyed, segmented store of work-unit payloads."""

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        segment_records: int | None = None,
        segment_bytes: int | None = None,
        fsync: bool | None = None,
    ):
        self.path = Path(path)
        self.segment_records = (
            segment_records
            if segment_records is not None
            else (_env_int(SEGMENT_RECORDS_ENV) or DEFAULT_SEGMENT_RECORDS)
        )
        self.segment_bytes = (
            segment_bytes
            if segment_bytes is not None
            else (_env_int(SEGMENT_BYTES_ENV) or DEFAULT_SEGMENT_BYTES)
        )
        if fsync is None:
            fsync = os.environ.get(FSYNC_ENV, "").strip() in ("1", "true", "yes")
        self.fsync = fsync
        #: fingerprint -> (segment file name or ``tail.jsonl``, offset, length)
        self._index: dict[str, tuple[str, int, int]] = {}
        self._append: IO[bytes] | None = None
        self._read_handles: dict[str, IO[bytes]] = {}
        self._tail_records = 0
        self._tail_ino: int | None = None
        self._mutex = threading.RLock()
        self._stats = {"rotations": 0, "compactions": 0, "truncated_bytes": 0, "reads": 0}
        self._open()

    # --------------------------------------------------------------- open/load

    def _open(self) -> None:
        self._migrate_legacy_file()
        self.path.mkdir(parents=True, exist_ok=True)
        self._flock = _FileLock(self.path / _LOCK)
        # Load under the inter-process lock: tail recovery may truncate, and
        # must never race a live writer's in-flight append.
        with self._flock:
            for name in self._segment_names():
                self._load_segment(name)
            self._recover_tail()

    def _migrate_legacy_file(self) -> None:
        """Turn a v1 single-file JSON-lines store into the directory layout."""
        backup = self.path.with_name(self.path.name + _MIGRATING_SUFFIX)
        if self.path.is_file():
            os.replace(self.path, backup)
        if not backup.is_file():
            return
        self.path.mkdir(parents=True, exist_ok=True)
        data = backup.read_bytes()
        records: dict[str, bytes] = {}
        for offset, length, record in _scan_lines(data):
            if _valid(record):
                records[record["fp"]] = data[offset : offset + length]
        if records:
            name = f"{_SEG_PREFIX}{1:06d}{_SEG_SUFFIX}"
            body = b"".join(records.values())
            self._write_atomic(self.path / name, body)
            self._write_index_file(name, body)
        backup.unlink(missing_ok=True)

    def _segment_names(self) -> list[str]:
        if not self.path.is_dir():
            return []
        return sorted(
            entry
            for entry in os.listdir(self.path)
            if entry.startswith(_SEG_PREFIX) and entry.endswith(_SEG_SUFFIX)
        )

    def _load_segment(self, name: str) -> None:
        idx_path = self.path / (name + _IDX_SUFFIX)
        entries: dict[str, tuple[int, int]] | None = None
        if idx_path.is_file():
            try:
                raw = json.loads(idx_path.read_text(encoding="utf-8"))
                if raw.get("v") == PAYLOAD_VERSION and isinstance(raw.get("records"), dict):
                    entries = {
                        fp: (int(loc[0]), int(loc[1])) for fp, loc in raw["records"].items()
                    }
            except (json.JSONDecodeError, OSError, ValueError, TypeError, IndexError):
                entries = None
        if entries is None:
            # Missing or corrupt sidecar: rebuild it from the segment itself.
            body = (self.path / name).read_bytes()
            entries = {}
            for offset, length, record in _scan_lines(body):
                if _valid(record):
                    entries[record["fp"]] = (offset, length)
            self._write_index_file(name, body)
        for fp, (offset, length) in entries.items():
            self._index[fp] = (name, offset, length)

    def _recover_tail(self) -> None:
        tail = self.path / _TAIL
        if not tail.is_file():
            self._tail_records = 0
            self._tail_ino = None
            return
        self._tail_ino = os.stat(tail).st_ino
        data = tail.read_bytes()
        committed = 0
        count = 0
        entries: dict[str, tuple[int, int]] = {}
        for offset, length, record in _scan_lines(data):
            if not _valid(record):
                if record is None:
                    break  # torn write: everything after it is suspect
                committed = offset + length  # wrong-version line: keep scanning
                continue
            entries[record["fp"]] = (offset, length)
            committed = offset + length
            count += 1
        if committed < len(data):
            with tail.open("r+b") as handle:
                handle.truncate(committed)
            self._stats["truncated_bytes"] += len(data) - committed
        for fp, (offset, length) in entries.items():
            self._index[fp] = (_TAIL, offset, length)
        self._tail_records = count

    # ------------------------------------------------------------------ access

    def get(self, fingerprint: str) -> dict | None:
        with self._mutex:
            location = self._index.get(fingerprint)
            if location is None:
                return None
            name, offset, length = location
            self._stats["reads"] += 1
            try:
                if name == _TAIL:
                    with (self.path / _TAIL).open("rb") as handle:
                        handle.seek(offset)
                        line = handle.read(length)
                else:
                    handle = self._read_handle(name)
                    handle.seek(offset)
                    line = handle.read(length)
                record = json.loads(line)
            except (OSError, json.JSONDecodeError):
                return None
            if not _valid(record) or record["fp"] != fingerprint:
                return None
            return record["payload"]

    def put(self, fingerprint: str, unit: WorkUnit, payload: dict) -> None:
        """Record one completed unit; durable as soon as this returns."""
        with self._mutex:
            if fingerprint in self._index:
                return
            record = {
                "v": PAYLOAD_VERSION,
                "fp": fingerprint,
                "strategy": unit.strategy,
                "model": unit.model,
                "problem_id": unit.problem_id,
                "sample": unit.sample,
                "payload": payload,
            }
            self._append_record_locked(fingerprint, record)

    def _append_record_locked(self, fingerprint: str, record: dict) -> None:
        """Append one record to the tail (caller holds ``self._mutex``)."""
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        with self._flock:
            self._reconcile_tail_locked()
            handle = self._append_handle()
            handle.seek(0, os.SEEK_END)
            offset = handle.tell()
            handle.write(line)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
            self._index[fingerprint] = (_TAIL, offset, len(line))
            self._tail_records += 1
            if (
                self._tail_records >= self.segment_records
                or offset + len(line) >= self.segment_bytes
            ):
                self._seal_tail_locked()

    # ------------------------------------------------------------ meta records

    def put_meta(self, key: str, payload: dict) -> None:
        """Record one named meta document (manifest, frontier marker, ...).

        Meta records share the store's append path — and therefore its crash
        safety, segmentation and first-wins semantics — but live in a key
        space that cannot collide with unit fingerprints.  Because ``put`` is
        first-wins, evolving documents must be written under *versioned* keys
        (e.g. ``campaign/<id>/manifest/<seq>``); :meth:`meta_keys` lets the
        reader find the newest version.
        """
        with self._mutex:
            fingerprint = META_PREFIX + key
            if fingerprint in self._index:
                return
            record = {"v": PAYLOAD_VERSION, "fp": fingerprint, "meta": True, "payload": payload}
            self._append_record_locked(fingerprint, record)

    def get_meta(self, key: str) -> dict | None:
        return self.get(META_PREFIX + key)

    def meta_keys(self, prefix: str = "") -> list[str]:
        """Sorted meta keys starting with ``prefix``."""
        full = META_PREFIX + prefix
        with self._mutex:
            return sorted(
                fp[len(META_PREFIX) :] for fp in self._index if fp.startswith(full)
            )

    def unit_fingerprints(self) -> list[str]:
        """Fingerprints of unit records only (meta records excluded)."""
        with self._mutex:
            return [fp for fp in self._index if not fp.startswith(META_PREFIX)]

    def __contains__(self, fingerprint: str) -> bool:
        with self._mutex:
            return fingerprint in self._index

    def __len__(self) -> int:
        with self._mutex:
            return len(self._index)

    def fingerprints(self) -> list[str]:
        with self._mutex:
            return list(self._index)

    def stats(self) -> dict:
        with self._mutex:
            return {
                "records": len(self._index),
                "segments": len(self._segment_names()),
                "tail_records": self._tail_records,
                **self._stats,
            }

    # ---------------------------------------------------------------- rotation

    def _append_handle(self) -> IO[bytes]:
        if self._append is None:
            self._append = (self.path / _TAIL).open("ab")
            self._tail_ino = os.fstat(self._append.fileno()).st_ino
        return self._append

    def _reconcile_tail_locked(self) -> None:
        """Detect a peer process having sealed our tail; remap and reopen.

        Called under the file lock.  If the tail file we indexed was rotated
        into a sealed segment by another writer, our in-memory tail entries
        are remapped to that segment (found by inode) and a fresh tail is
        opened, so appends never land in a sealed file.
        """
        if self._tail_ino is None:
            return
        tail = self.path / _TAIL
        try:
            current = os.stat(tail).st_ino if tail.exists() else None
        except OSError:  # pragma: no cover - defensive
            current = None
        if current == self._tail_ino:
            return
        sealed_name = None
        for name in self._segment_names():
            try:
                if os.stat(self.path / name).st_ino == self._tail_ino:
                    sealed_name = name
                    break
            except OSError:  # pragma: no cover - racing a compaction
                continue
        for fp, (name, offset, length) in list(self._index.items()):
            if name == _TAIL:
                if sealed_name is not None:
                    self._index[fp] = (sealed_name, offset, length)
                else:  # pragma: no cover - sealed segment already compacted away
                    del self._index[fp]
        if self._append is not None:
            self._append.close()
            self._append = None
        self._tail_records = 0
        self._tail_ino = None

    def _seal_tail_locked(self) -> None:
        """Atomically rotate the tail into the next sealed segment."""
        tail = self.path / _TAIL
        handle = self._append_handle()
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        self._append = None
        # Index the whole tail by scanning it: under concurrent writers it
        # may hold peers' records our in-memory index never saw.
        body = tail.read_bytes()
        names = self._segment_names()
        next_number = int(names[-1][len(_SEG_PREFIX) : -len(_SEG_SUFFIX)]) + 1 if names else 1
        name = f"{_SEG_PREFIX}{next_number:06d}{_SEG_SUFFIX}"
        os.replace(tail, self.path / name)
        self._write_index_file(name, body)
        for fp, (where, offset, length) in list(self._index.items()):
            if where == _TAIL:
                self._index[fp] = (name, offset, length)
        self._tail_records = 0
        self._tail_ino = None
        self._stats["rotations"] += 1

    def _write_index_file(self, name: str, body: bytes) -> None:
        entries = {}
        for offset, length, record in _scan_lines(body):
            if _valid(record):
                entries[record["fp"]] = [offset, length]
        payload = json.dumps({"v": PAYLOAD_VERSION, "records": entries}, sort_keys=True)
        self._write_atomic(self.path / (name + _IDX_SUFFIX), payload.encode("utf-8"))

    def _write_atomic(self, target: Path, body: bytes) -> None:
        tmp = target.with_name(target.name + f".tmp.{os.getpid()}")
        with tmp.open("wb") as handle:
            handle.write(body)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)

    # -------------------------------------------------------------- compaction

    def compact(self) -> dict:
        """Rewrite the live record set; drop superseded records and segments.

        Returns ``{"records": kept, "dropped_segments": n}``.  Crash-safe:
        new segments are written (numbered after every existing segment)
        before any old file is removed, and last-wins replay on open makes a
        half-compacted store read identically.
        """
        with self._mutex, self._flock:
            self._reconcile_tail_locked()
            live: list[bytes] = []
            for fingerprint in list(self._index):
                name, offset, length = self._index[fingerprint]
                source = self.path / name
                try:
                    with source.open("rb") as handle:
                        handle.seek(offset)
                        live.append(handle.read(length))
                except OSError:  # pragma: no cover - racing writer
                    continue
            old_segments = self._segment_names()
            next_number = (
                int(old_segments[-1][len(_SEG_PREFIX) : -len(_SEG_SUFFIX)]) + 1
                if old_segments
                else 1
            )
            if self._append is not None:
                self._append.close()
                self._append = None
            new_names: list[str] = []
            body = b""
            for start in range(0, len(live), self.segment_records):
                chunk = b"".join(live[start : start + self.segment_records])
                name = f"{_SEG_PREFIX}{next_number:06d}{_SEG_SUFFIX}"
                next_number += 1
                self._write_atomic(self.path / name, chunk)
                self._write_index_file(name, chunk)
                new_names.append(name)
                body += chunk
            # New generation durable; now retire the old one.
            for name in old_segments:
                (self.path / name).unlink(missing_ok=True)
                (self.path / (name + _IDX_SUFFIX)).unlink(missing_ok=True)
            # Unlink (not truncate) so peers' inode checks see the rotation.
            (self.path / _TAIL).unlink(missing_ok=True)
            self._tail_records = 0
            self._tail_ino = None
            for handle in self._read_handles.values():
                handle.close()
            self._read_handles.clear()
            self._index.clear()
            for name in new_names:
                self._load_segment(name)
            self._stats["compactions"] += 1
            return {"records": len(self._index), "dropped_segments": len(old_segments)}

    # --------------------------------------------------------------- lifecycle

    def _read_handle(self, name: str) -> IO[bytes]:
        handle = self._read_handles.get(name)
        if handle is None:
            handle = self._read_handles[name] = (self.path / name).open("rb")
        return handle

    def close(self) -> None:
        with self._mutex:
            if self._append is not None:
                self._append.close()
                self._append = None
            for handle in self._read_handles.values():
                handle.close()
            self._read_handles.clear()
            self._flock.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
