"""Table IV: ReChisel (Chisel) vs AutoChip (direct Verilog) at n = 10."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import fmt_pair, render_table
from repro.experiments.runner import AutoChipCase, EvaluationHarness, ReflectionCase
from repro.llm.profiles import CLAUDE_SONNET, GPT4_TURBO, GPT4O
from repro.metrics.passk import aggregate_pass_at_k

PASS_KS = (1, 5, 10)

# Paper's Table IV: model -> {k: (rechisel, autochip)}.
PAPER_TABLE4 = {
    GPT4_TURBO: {1: (73.24, 79.81), 5: (83.10, 87.79), 10: (85.92, 89.20)},
    GPT4O: {1: (77.46, 78.40), 5: (85.45, 84.51), 10: (88.73, 87.79)},
    CLAUDE_SONNET: {1: (84.98, 91.08), 5: (92.49, 96.71), 10: (93.43, 97.65)},
}


@dataclass
class Table4Result:
    rechisel: dict[str, dict[int, float]] = field(default_factory=dict)
    autochip: dict[str, dict[int, float]] = field(default_factory=dict)
    raw_rechisel: dict[str, list[ReflectionCase]] = field(default_factory=dict)
    raw_autochip: dict[str, list[AutoChipCase]] = field(default_factory=dict)

    def render(self) -> str:
        rows = []
        for k in PASS_KS:
            for model in self.rechisel:
                paper = PAPER_TABLE4.get(model, {}).get(k)
                rows.append(
                    [
                        f"Pass@{k}",
                        model,
                        fmt_pair(self.rechisel[model][k], paper[0] if paper else None),
                        fmt_pair(self.autochip[model][k], paper[1] if paper else None),
                    ]
                )
        return render_table(
            ["Metric", "Model", "ReChisel", "AutoChip"],
            rows,
            title="Table IV — ReChisel vs AutoChip at n=10; measured (paper)",
        )


def run(
    config: ExperimentConfig | None = None,
    harness: EvaluationHarness | None = None,
    rechisel_cases: dict[str, list[ReflectionCase]] | None = None,
) -> Table4Result:
    config = config or ExperimentConfig.from_environment()
    harness = harness or EvaluationHarness(config)
    result = Table4Result()
    samples = config.samples_per_case
    cap = config.max_iterations
    for model in config.autochip_models:
        reflection = (
            rechisel_cases[model]
            if rechisel_cases is not None and model in rechisel_cases
            else harness.run_rechisel(model)
        )
        autochip = harness.run_autochip(model)
        result.raw_rechisel[model] = reflection
        result.raw_autochip[model] = autochip
        result.rechisel[model] = {
            k: aggregate_pass_at_k([(samples, c.pass_count_at(cap)) for c in reflection], k)
            for k in PASS_KS
        }
        result.autochip[model] = {
            k: aggregate_pass_at_k([(samples, c.pass_count_at(cap)) for c in autochip], k)
            for k in PASS_KS
        }
    return result
