"""Experiment runners: one module per table/figure in the paper's evaluation.

Every runner takes an :class:`~repro.experiments.config.ExperimentConfig`
(which controls how many cases, samples and models are evaluated — the full
paper-scale settings and a quick smoke-test scale are both provided) and
returns a result object with ``rows``/``series`` data plus a ``render()``
method that prints the same structure the paper reports, side by side with the
paper's numbers.

All sweeps execute through the sweep engine (work units → executor → result
store); see :mod:`repro.experiments.engine` and EXPERIMENTS.md.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import SweepEngine, SweepStats
from repro.experiments.executors import ParallelExecutor, SerialExecutor
from repro.experiments.runner import EvaluationHarness
from repro.experiments.store import ResultStore
from repro.experiments.strategies import (
    AutoChipStrategy,
    ReChiselStrategy,
    Strategy,
    ZeroShotStrategy,
)
from repro.experiments.work import WorkerContext, WorkUnit, unit_fingerprint

__all__ = [
    "AutoChipStrategy",
    "EvaluationHarness",
    "ExperimentConfig",
    "ParallelExecutor",
    "ReChiselStrategy",
    "ResultStore",
    "SerialExecutor",
    "Strategy",
    "SweepEngine",
    "SweepStats",
    "WorkUnit",
    "WorkerContext",
    "ZeroShotStrategy",
    "unit_fingerprint",
]
