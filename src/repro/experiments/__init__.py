"""Experiment runners: one module per table/figure in the paper's evaluation.

Every runner takes an :class:`~repro.experiments.config.ExperimentConfig`
(which controls how many cases, samples and models are evaluated — the full
paper-scale settings and a quick smoke-test scale are both provided) and
returns a result object with ``rows``/``series`` data plus a ``render()``
method that prints the same structure the paper reports, side by side with the
paper's numbers.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import EvaluationHarness

__all__ = ["ExperimentConfig", "EvaluationHarness"]
