"""Small helpers for rendering experiment results as text tables."""

from __future__ import annotations


def render_table(headers: list[str], rows: list[list[str]], title: str | None = None) -> str:
    """Render a simple fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def fmt_pct(value: float) -> str:
    return f"{value:.2f}"


def fmt_pair(measured: float, paper: float | None) -> str:
    """Format a measured value with the paper's value alongside for comparison."""
    if paper is None:
        return f"{measured:.2f}"
    return f"{measured:.2f} ({paper:.2f})"
