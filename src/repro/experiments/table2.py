"""Table II: common syntax errors and the compiler feedback they produce.

For every knowledge-base entry whose incorrect snippet is compilable code
(some rows are schematic), the runner wraps the snippet in a minimal module,
compiles it through the toolchain, and reports the diagnostic actually
produced — regenerating the "Compiler Feedback" column of the paper's table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.knowledge import KNOWLEDGE_BASE, KnowledgeEntry, wrap_snippet
from repro.experiments.reporting import render_table
from repro.toolchain.compiler import ChiselCompiler


@dataclass
class Table2Row:
    entry: KnowledgeEntry
    reproduced: bool
    measured_feedback: str


@dataclass
class Table2Result:
    rows: list[Table2Row] = field(default_factory=list)

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            table_rows.append(
                [
                    row.entry.code,
                    row.entry.description[:58],
                    "yes" if row.reproduced else "schematic",
                    row.measured_feedback[:80],
                ]
            )
        return render_table(
            ["Class", "Description", "Reproduced", "Measured compiler feedback"],
            table_rows,
            title="Table II — common error catalogue vs toolchain diagnostics",
        )


def run() -> Table2Result:
    compiler = ChiselCompiler(top="TopModule")
    result = Table2Result()
    for entry in KNOWLEDGE_BASE:
        if entry.incorrect.lstrip().startswith("//"):
            # Schematic rows (B4, C1) are documented but not directly compilable.
            result.rows.append(Table2Row(entry, False, entry.feedback.splitlines()[0]))
            continue
        compiled = compiler.compile(wrap_snippet(entry.incorrect))
        if compiled.success:
            result.rows.append(Table2Row(entry, False, "snippet unexpectedly compiled"))
            continue
        first_error = compiled.errors[0]
        result.rows.append(Table2Row(entry, True, first_error.message.splitlines()[0]))
    return result
