#!/usr/bin/env python
"""The paper's Fig. 8 case study: repairing the HDLBits Vector5 problem.

Replays the exact four-attempt trajectory the paper reports for GPT-4o —
two syntax errors, one functional error, then success — through the real
ReChisel workflow, printing the compiler/simulator feedback at every step.

Run with:  python examples/case_study_vector5.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import fig8_case_study


def main() -> None:
    result = fig8_case_study.run()
    print(result.render())
    print()
    print("Final accepted Chisel code:")
    print(result.result.final_code)


if __name__ == "__main__":
    main()
