#!/usr/bin/env python
"""Demo of the async generation service: N synthetic clients, one event loop.

Usage:
    python examples/serve.py                       # 64 jobs, concurrency 32
    python examples/serve.py --jobs 200 --concurrency 64 --latency 0.02
    python examples/serve.py --rate-limit 100 --batch-window 0.005

Synthesizes a mixed workload (zero-shot, ReChisel and AutoChip sessions over
several models and benchmark problems), serves it through
:class:`repro.service.GenerationService` with a latency-simulating client
(modelling provider round-trips), then replays a wave of duplicate specs to
show the fingerprint result cache serving repeats with zero LLM calls.

The ``REPRO_SERVICE_*`` environment knobs (see EXPERIMENTS.md) provide the
defaults; command-line flags override them.
"""

import argparse
import asyncio
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.work import WorkerContext, WorkUnit
from repro.llm.dispatch import LatencyClient
from repro.llm.profiles import PAPER_MODELS
from repro.service import GenerationService, ServiceConfig

STRATEGIES = (
    ("zero_shot", (("language", "chisel"),), 0),
    ("zero_shot", (("language", "verilog"),), 0),
    ("rechisel", (("enable_escape", True), ("feedback_detail", "full"), ("use_knowledge", True)), 10),
    ("autochip", (), 10),
)


def synth_workload(context: WorkerContext, jobs: int) -> list[WorkUnit]:
    """A deterministic mixed workload of ``jobs`` units."""
    problems = list(context.registry)
    units = []
    for index in range(jobs):
        strategy, knobs, max_iterations = STRATEGIES[index % len(STRATEGIES)]
        problem = problems[index % len(problems)]
        units.append(
            WorkUnit(
                strategy=strategy,
                model=PAPER_MODELS[index % len(PAPER_MODELS)],
                problem_id=problem.problem_id,
                case_index=index % len(problems),
                sample=index // len(problems),
                seed=0,
                max_iterations=max_iterations,
                knobs=knobs,
            )
        )
    return units


async def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=64, help="synthetic client jobs to submit")
    parser.add_argument("--concurrency", type=int, default=None, help="max in-flight sessions")
    parser.add_argument("--latency", type=float, default=0.02, help="simulated LLM round-trip (s)")
    parser.add_argument("--batch-window", type=float, default=None, help="dispatch batch window (s)")
    parser.add_argument("--rate-limit", type=float, default=None, help="LLM requests per second")
    parser.add_argument("--store", default=None, help="persistent result store path")
    args = parser.parse_args()

    config = ServiceConfig.from_environment()
    if args.concurrency is not None:
        config.max_in_flight = max(1, args.concurrency)
    if args.batch_window is not None:
        config.batch_window = max(0.0, args.batch_window)
    if args.rate_limit is not None:
        config.rate_limit = args.rate_limit if args.rate_limit > 0 else None
    if args.store is not None:
        config.store_path = args.store

    context = WorkerContext()
    units = synth_workload(context, args.jobs)
    service = GenerationService(
        config,
        context=context,
        client_factory=lambda unit: LatencyClient(context.client_for(unit), args.latency),
    )

    print(
        f"Serving {len(units)} jobs at concurrency {config.max_in_flight} "
        f"(simulated LLM latency {args.latency * 1000:.0f} ms, "
        f"batch window {config.batch_window * 1000:.1f} ms, "
        f"rate limit {config.rate_limit or 'off'})\n"
    )

    async with service:
        start = time.perf_counter()
        payloads = await service.run(units)
        elapsed = time.perf_counter() - start
        successes = sum(1 for payload in payloads if payload.get("success") or payload.get("outcome") == "success")
        print(f"cold wave: {len(payloads)} sessions in {elapsed:.2f}s "
              f"({len(payloads) / elapsed:.1f} sessions/s, {successes} successful)")
        print(service.snapshot().render())

        # A second wave of identical specs: served entirely from the result
        # cache — queue, workers and telemetry advance, LLM traffic does not.
        before = service.dispatcher.stats.requests
        start = time.perf_counter()
        replay = await service.run(units)
        elapsed = time.perf_counter() - start
        assert replay == payloads
        print(
            f"\nwarm wave: {len(replay)} sessions in {elapsed:.2f}s — "
            f"{service.dispatcher.stats.requests - before} new LLM calls "
            f"(cache hits {service.snapshot().cache_hits})"
        )


if __name__ == "__main__":
    asyncio.run(main())
