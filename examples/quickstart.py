#!/usr/bin/env python
"""Quickstart: compile Chisel, simulate it, and run one ReChisel repair loop.

Run with:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.rechisel import ReChisel
from repro.llm.profiles import CLAUDE_SONNET, MODEL_PROFILES
from repro.llm.synthetic import SyntheticChiselLLM
from repro.problems.registry import build_default_registry
from repro.toolchain.compiler import ChiselCompiler
from repro.toolchain.simulator import Simulator

COUNTER_CHISEL = """
import chisel3._
import chisel3.util._

class TopModule extends Module {
  val io = IO(new Bundle {
    val en = Input(Bool())
    val count = Output(UInt(4.W))
  })
  val reg = RegInit(0.U(4.W))
  when (io.en) {
    reg := reg + 1.U
  }
  io.count := reg
}
"""

BROKEN_CHISEL = """
import chisel3._

class TopModule extends Module {
  val io = IO(new Bundle {
    val en = Input(Bool())
    val count = Output(UInt(4.W))
  })
  val next = Wire(UInt(4.W))
  when (io.en) { next := next + 1.U }
  io.count := next
}
"""


def main() -> None:
    compiler = ChiselCompiler(top="TopModule")

    # 1. Compile correct Chisel to Verilog.
    good = compiler.compile(COUNTER_CHISEL)
    print("=== Compiling a correct 4-bit counter ===")
    print(good.verilog)

    # 2. Compile broken Chisel and look at the diagnostics the Reviewer would see.
    print("=== Compiling a broken variant (uninitialised wire) ===")
    bad = compiler.compile(BROKEN_CHISEL)
    print(bad.render_feedback())
    print()

    # 3. Simulate the correct design against itself on a benchmark testbench.
    registry = build_default_registry()
    problem = registry.by_id("counter_w4")
    simulator = Simulator(top="TopModule")
    outcome = simulator.simulate(good.verilog, good.verilog, problem.build_testbench())
    print("=== Simulating the counter against the benchmark testbench ===")
    print(outcome.render_feedback())
    print()

    # 4. Run the full ReChisel reflection loop with the synthetic Claude 3.5 Sonnet profile.
    print("=== Running ReChisel (synthetic Claude 3.5 Sonnet) on the benchmark case ===")
    client = SyntheticChiselLLM(registry, MODEL_PROFILES[CLAUDE_SONNET], seed=1)
    workflow = ReChisel(client, max_iterations=10)
    result = workflow.run(
        problem.spec_text(), problem.build_testbench(), good.verilog, case_id=problem.problem_id
    )
    print(f"success: {result.success} after {result.success_iteration} reflection iterations")
    for record in result.records:
        print(f"  iteration {record.iteration}: {record.outcome}"
              + (" (after escape)" if record.escaped else ""))


if __name__ == "__main__":
    main()
