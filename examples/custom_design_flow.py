#!/usr/bin/env python
"""Use the toolchain and agents on a design of your own (outside the benchmark).

This example shows the downstream-user workflow:

1. define a specification and a reference model in plain Python;
2. run any Chisel source through the compiler and simulator;
3. plug a *real* LLM into the agents through ``CallableClient`` — here a tiny
   stub stands in for the API call, returning a first attempt with a bug and a
   fixed version on revision, so the reflection loop is exercised end to end.

Run with:  python examples/custom_design_flow.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.rechisel import ReChisel
from repro.llm.client import CallableClient, ChatMessage
from repro.llm.prompts import REVIEWER_SYSTEM, SECTION_REVISION_PLAN
from repro.sim.reference import BehavioralDevice
from repro.sim.testbench import FunctionalPoint, Testbench

SPEC = """Implement a 4-bit saturating incrementer.
Ports:
  - input  [3:0] in
  - input  en
  - output [3:0] out
When en is 1, out = min(in + 1, 15); when en is 0, out = in.
"""

FIRST_ATTEMPT = """
import chisel3._

class TopModule extends Module {
  val io = IO(new Bundle {
    val in = Input(UInt(4.W))
    val en = Input(Bool())
    val out = Output(UInt(4.W))
  })
  io.out := Mux(io.en, io.in + 1.U, io.in)
}
"""

FIXED_ATTEMPT = """
import chisel3._

class TopModule extends Module {
  val io = IO(new Bundle {
    val in = Input(UInt(4.W))
    val en = Input(Bool())
    val out = Output(UInt(4.W))
  })
  val incremented = Mux(io.in === 15.U, 15.U, io.in + 1.U)
  io.out := Mux(io.en, incremented, io.in)
}
"""


def fake_llm(messages: list[ChatMessage]) -> str:
    """Stands in for a real chat API: buggy first attempt, correct revision."""
    if messages[0].content == REVIEWER_SYSTEM:
        return (
            "Error 1:\n  Location: the incrementer output.\n"
            "  Root Cause: in + 1 wraps from 15 back to 0 instead of saturating.\n"
            "  Solution: clamp the result at 15 with a Mux on in === 15."
        )
    if SECTION_REVISION_PLAN in messages[-1].content:
        return f"```scala\n{FIXED_ATTEMPT}\n```"
    return f"```scala\n{FIRST_ATTEMPT}\n```"


def build_testbench() -> Testbench:
    points = [
        FunctionalPoint({"io_in": value, "io_en": enable})
        for value in range(16)
        for enable in (0, 1)
    ]
    return Testbench(points=points, reset_cycles=0)


def main() -> None:
    reference = BehavioralDevice(
        output_widths={"io_out": 4},
        combinational=lambda inputs, state: {
            "io_out": min(inputs["io_in"] + 1, 15) if inputs["io_en"] else inputs["io_in"]
        },
    )
    workflow = ReChisel(CallableClient(fake_llm), max_iterations=5)
    result = workflow.run(SPEC, build_testbench(), reference)

    print(f"success: {result.success} (after {result.success_iteration} reflection iterations)")
    for entry in result.trace.entries:
        print(f"--- iteration {entry.iteration}: {entry.feedback.kind.value}")
        print("\n".join(entry.feedback.text.splitlines()[:3]))
    print()
    print("Accepted Verilog:")
    print(result.final_verilog)


if __name__ == "__main__":
    main()
