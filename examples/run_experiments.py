#!/usr/bin/env python
"""Regenerate any of the paper's tables and figures from the command line.

Usage:
    python examples/run_experiments.py table1 table3
    python examples/run_experiments.py all
    REPRO_FULL_EVAL=1 python examples/run_experiments.py all   # paper-scale sweep

Without ``REPRO_FULL_EVAL=1`` the quick configuration (a suite-balanced subset
of cases, 2 samples per case) is used so every experiment finishes in seconds
to a couple of minutes.
"""

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import fig1, fig6, fig7, fig8_case_study, table1, table2, table3, table4
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import EvaluationHarness

EXPERIMENTS = ("table1", "table2", "table3", "table4", "fig1", "fig6", "fig7", "fig8")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=EXPERIMENTS + ("all",),
        help="which tables/figures to regenerate",
    )
    args = parser.parse_args()
    selected = list(EXPERIMENTS) if "all" in args.experiments else args.experiments

    config = ExperimentConfig.from_environment()
    harness = EvaluationHarness(config)
    scale = "paper-scale" if config.max_cases is None else "quick-scale"
    print(
        f"Configuration: {scale} — {len(harness.problems())} cases, "
        f"{config.samples_per_case} samples/case, {config.max_iterations} max iterations\n"
    )

    # Reflection runs are shared between Table III, Table IV, Fig. 6 and Fig. 7.
    table3_result = None

    def rechisel_runs():
        nonlocal table3_result
        if table3_result is None:
            table3_result = table3.run(config, harness)
        return table3_result

    for name in selected:
        start = time.time()
        if name == "table1":
            output = table1.run(config, harness).render()
        elif name == "table2":
            output = table2.run().render()
        elif name == "table3":
            output = rechisel_runs().render()
        elif name == "table4":
            output = table4.run(config, harness, rechisel_cases=rechisel_runs().raw).render()
        elif name == "fig1":
            output = fig1.run(config, harness).render()
        elif name == "fig6":
            output = fig6.run(config, harness, rechisel_cases=rechisel_runs().raw).render()
        elif name == "fig7":
            from repro.llm.profiles import GPT4O

            cases = rechisel_runs().raw.get(GPT4O)
            output = fig7.run(config, harness, rechisel_cases=cases).render()
        else:
            output = fig8_case_study.run().render()
        elapsed = time.time() - start
        print(output)
        print(f"[{name} regenerated in {elapsed:.1f}s]\n")


if __name__ == "__main__":
    main()
