#!/usr/bin/env python
"""Regenerate any of the paper's tables and figures from the command line.

Usage:
    python examples/run_experiments.py table1 table3
    python examples/run_experiments.py all --jobs 4
    python examples/run_experiments.py all --no-store
    REPRO_FULL_EVAL=1 python examples/run_experiments.py all   # paper-scale sweep

Without ``REPRO_FULL_EVAL=1`` the quick configuration (a family-stratified
subset of cases, 2 samples per case) is used so every experiment finishes in
seconds to a couple of minutes.

Every sweep runs through the sweep execution engine (work units → executor →
result store, see EXPERIMENTS.md): ``--jobs N`` fans work units out over N
worker processes, and completed units are persisted to ``--store`` (a
JSON-lines file, default ``.repro-cache/results.jsonl``) so reruns and
overlapping experiments — Table III, Table IV, Fig. 6 and Fig. 7 share their
ReChisel sweeps — reuse results instead of recomputing, and interrupted runs
resume.  ``--no-store`` keeps everything in memory, and ``--progress`` prints
live ``done/total`` work-unit counts as each sweep advances.
"""

import argparse
import dataclasses
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import fig1, fig6, fig7, fig8_case_study, table1, table2, table3, table4
from repro.experiments.config import RESULT_STORE_ENV, ExperimentConfig
from repro.experiments.runner import EvaluationHarness

EXPERIMENTS = ("table1", "table2", "table3", "table4", "fig1", "fig6", "fig7", "fig8")
DEFAULT_STORE = os.path.join(".repro-cache", "results.jsonl")


def _print_progress(done: int, total: int) -> None:
    """Live per-unit sweep progress (``--progress``); one line per sweep."""
    end = "\n" if done == total else ""
    print(f"\r  [sweep] {done}/{total} work units", end=end, flush=True)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=EXPERIMENTS + ("all",),
        help="which tables/figures to regenerate",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the sweep engine (default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--store",
        default=None,
        help=f"path of the persistent result store (default: REPRO_RESULT_STORE or {DEFAULT_STORE})",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable the persistent result store (in-memory memoization only)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print live done/total counts as the sweep engine completes work units",
    )
    args = parser.parse_args()
    selected = list(EXPERIMENTS) if "all" in args.experiments else args.experiments

    config = ExperimentConfig.from_environment()
    if args.jobs is not None:
        config = dataclasses.replace(config, jobs=max(1, args.jobs))
    if args.no_store:
        config = dataclasses.replace(config, store_path=None)
    elif args.store is not None:
        config = dataclasses.replace(config, store_path=args.store)
    elif config.store_path is None and os.environ.get(RESULT_STORE_ENV) is None:
        # Default the quickstart path to a persistent store — but an explicit
        # REPRO_RESULT_STORE=off/0/none stays disabled.
        config = dataclasses.replace(config, store_path=DEFAULT_STORE)

    harness = EvaluationHarness(config)
    if args.progress:
        harness.engine.progress = _print_progress
    scale = "paper-scale" if config.max_cases is None else "quick-scale"
    store_label = config.store_path or "disabled"
    print(
        f"Configuration: {scale} — {len(harness.problems())} cases, "
        f"{config.samples_per_case} samples/case, {config.max_iterations} max iterations, "
        f"jobs={config.jobs}, store={store_label}\n"
    )

    # The engine memoizes work units, so the ReChisel sweeps shared by
    # Table III, Table IV, Fig. 6 and Fig. 7 are computed exactly once.
    for name in selected:
        start = time.time()
        if name == "table1":
            output = table1.run(config, harness).render()
        elif name == "table2":
            output = table2.run().render()
        elif name == "table3":
            output = table3.run(config, harness).render()
        elif name == "table4":
            output = table4.run(config, harness).render()
        elif name == "fig1":
            output = fig1.run(config, harness).render()
        elif name == "fig6":
            output = fig6.run(config, harness).render()
        elif name == "fig7":
            output = fig7.run(config, harness).render()
        else:
            output = fig8_case_study.run().render()
        elapsed = time.time() - start
        print(output)
        print(f"[{name} regenerated in {elapsed:.1f}s]\n")

    stats = harness.engine.stats
    print(
        f"Sweep engine: {stats.executed} work units executed, "
        f"{stats.memo_hits} in-memory hits, {stats.store_hits} store hits"
    )
    harness.engine.close()


if __name__ == "__main__":
    main()
