"""Setup shim so editable installs work without network access (no wheel pkg)."""
from setuptools import setup

setup()
