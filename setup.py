"""Setup shim so editable installs work without network access (no wheel pkg)."""
from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    # NumPy powers the vectorized simulation backend (repro.verilog.compile_vec);
    # the toolchain degrades to the scalar trace/step-wise backends without it.
    install_requires=["numpy"],
    # The operations console's full-screen UI (repro.console.app); the event
    # bus, the headless console model and --plain mode work without it.
    extras_require={"console": ["textual"]},
)
