"""Ensure the src/ layout is importable even without an editable install.

Offline environments sometimes cannot complete ``pip install -e .`` (PEP 517
editable builds need the ``wheel`` package); adding ``src`` to ``sys.path``
here keeps ``pytest`` runnable either way.

Also provides test isolation for the global toolchain caches: tests (and
benchmarks) that clear or cold-start the registered stage caches
(``clear_registered_caches``, ``clear_kernel_cache``) or assert absolute
hit/miss counters carry the ``cache_mutating`` marker; the autouse fixture
below gives them a deterministic cold start and restores the snapshotted warm
state afterwards, so no test depends on execution order
(``pytest -p no:randomly``-style assumptions disappear).
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


@pytest.fixture(autouse=True)
def _cache_isolation(request):
    if request.node.get_closest_marker("cache_mutating") is None:
        yield
        return
    from repro.caching import (
        clear_registered_caches,
        restore_registered_caches,
        snapshot_registered_caches,
    )
    from repro.verilog import compile_sim

    snapshot = snapshot_registered_caches()
    fallbacks = compile_sim._fallbacks[0]
    clear_registered_caches()
    compile_sim._fallbacks[0] = 0
    try:
        yield
    finally:
        restore_registered_caches(snapshot)
        compile_sim._fallbacks[0] = fallbacks
