"""Ensure the src/ layout is importable even without an editable install.

Offline environments sometimes cannot complete ``pip install -e .`` (PEP 517
editable builds need the ``wheel`` package); adding ``src`` to ``sys.path``
here keeps ``pytest`` runnable either way.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
